#ifndef AUTHDB_CRYPTO_BAS_H_
#define AUTHDB_CRYPTO_BAS_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/slice.h"
#include "crypto/ec.h"
#include "crypto/pairing.h"

namespace authdb {

/// A BAS (Bilinear Aggregate Signature) signature: one point in the
/// prime-order subgroup. The paper equates its 160-bit compressed size with
/// one SHA digest; VO size accounting uses that constant (see SizeModel in
/// core/vo_size.h).
struct BasSignature {
  ECPoint point;

  /// Byte count of this signature under the implementation's wire format
  /// (CurveGroup::Serialize: x||y, each coordinate padded to the field
  /// width). The width is recovered from the coordinates themselves — both
  /// are residues mod p, so the wider one spans the field width except when
  /// its top byte happens to be zero (a rare 1-byte undercount). The point
  /// at infinity reports 2 bytes rather than a full field serialization.
  size_t wire_bytes() const {
    int bits = point.x.BitLength();
    if (point.y.BitLength() > bits) bits = point.y.BitLength();
    size_t coord = static_cast<size_t>(bits + 7) / 8;
    return 2 * (coord > 0 ? coord : 1);
  }
};

/// A deferred-finalization signature aggregate: point additions accumulate
/// in Jacobian coordinates (cheap mixed adds, no inversion) and the final
/// affine conversion — the expensive step — is left to
/// BasContext::FinalizeBatch, which shares ONE field inversion across every
/// accumulator of a batch. This is how the batched execution path
/// amortizes proof construction across the plans of one shard visit.
struct BasAccumulator {
  CurveGroup::Jacobian jac{};  ///< Z = 0 encodes the empty aggregate
  size_t count = 0;            ///< signatures added (infinity included)

  bool empty() const { return count == 0; }
  void Add(const CurveGroup& curve, const BasSignature& sig) {
    ++count;
    if (sig.point.infinity) return;
    jac = curve.JacAddAffine(jac, sig.point);
  }
};

/// Shared, immutable BAS domain parameters: a supersingular curve
/// y^2 = x^3 + x over F_p (p = 3 mod 4, 256 bits), a 160-bit prime subgroup
/// order r with p + 1 = cofactor * r, the Tate pairing, a generator, and a
/// fixed-base window table for fast exponent-hash signing.
///
/// Hash-to-group modes:
///  * kSecure — try-and-increment hash-to-point with cofactor clearing; this
///    is the real BLS construction and the default.
///  * kFast — H(m) = (SHA-256(m) mod r) * G via the fixed-base table. The
///    group element is structurally identical and all aggregation and
///    pairing-verification code paths are identical, but the discrete log of
///    H(m) is public, so this mode is NOT cryptographically secure. It
///    exists to bulk-load million-record experiment databases (documented
///    substitution #2 in DESIGN.md).
class BasContext {
 public:
  enum class HashMode { kSecure, kFast };

  /// Deterministic default parameter set (fixed seed). Built once, shared.
  static std::shared_ptr<const BasContext> Default();
  /// Generate fresh parameters with the given rng (exposed for tests).
  static std::shared_ptr<const BasContext> Generate(int p_bits, int r_bits,
                                                    Rng* rng);

  const CurveGroup& curve() const { return *curve_; }
  const TatePairing& pairing() const { return *pairing_; }
  const ECPoint& generator() const { return generator_; }
  const BigInt& order() const { return curve_->order(); }

  /// Map a message to a point of the order-r subgroup.
  ECPoint HashToPoint(Slice msg, HashMode mode) const;
  /// SHA-256(msg) reduced into Z_r (the exponent used by kFast).
  BigInt HashToScalar(Slice msg) const;
  /// Batched HashToScalar: every message is hashed through the multi-buffer
  /// SHA front end (Sha256::HashMany) in one pass, then reduced into Z_r.
  /// `out` must hold `count` scalars; equivalent to HashToScalar per msg.
  void HashToScalarMany(const Slice* msgs, size_t count, BigInt* out) const;
  /// k * G through the fixed-base window table (~40 mixed additions).
  ECPoint FixedBaseMult(const BigInt& k) const;
  /// k * G left as a Jacobian accumulator (no inversion): callers doing
  /// many multiplications batch the affine conversion via ToAffineBatch.
  CurveGroup::Jacobian FixedBaseMultJac(const BigInt& k) const;

  /// Aggregate signatures by point addition (associative & commutative).
  BasSignature Aggregate(const std::vector<BasSignature>& sigs) const;
  /// Incremental aggregation: acc += s.
  BasSignature Combine(const BasSignature& a, const BasSignature& b) const;
  /// Remove one component: acc -= s (used by SigCache eager refresh).
  BasSignature Remove(const BasSignature& acc, const BasSignature& s) const;

  /// Finalize one accumulator (one inversion). Prefer FinalizeBatch.
  BasSignature Finalize(const BasAccumulator& acc) const;
  /// Finalize every accumulator with one shared field inversion
  /// (CurveGroup::ToAffineBatch); accs[i] may be null (skipped). Null and
  /// empty accumulators finalize to the infinity signature.
  std::vector<BasSignature> FinalizeBatch(
      const std::vector<const BasAccumulator*>& accs) const;

 private:
  BasContext() = default;
  void BuildFixedBaseTable();

  std::unique_ptr<CurveGroup> curve_;
  std::unique_ptr<TatePairing> pairing_;
  ECPoint generator_;
  // fixed_base_[w][j] = j * 2^(4w) * G for j in [1, 15], affine.
  std::vector<std::vector<ECPoint>> fixed_base_;
};

/// One element of BasPublicKey::VerifyAggregateBatch: an aggregate
/// signature and the messages it is claimed to cover.
struct BasAggregateClaim {
  std::vector<Slice> messages;
  BasSignature agg;
};

class BasPublicKey {
 public:
  BasPublicKey() = default;
  BasPublicKey(std::shared_ptr<const BasContext> ctx, ECPoint pk)
      : ctx_(std::move(ctx)), pk_(std::move(pk)) {}

  /// Verify one signature: e(sigma, G) == e(H(m), pk).
  bool Verify(Slice message, const BasSignature& sig,
              BasContext::HashMode mode = BasContext::HashMode::kSecure) const;

  /// Verify an aggregate signature over messages all signed by this key:
  /// e(sigma_agg, G) == e(sum_i H(m_i), pk).
  bool VerifyAggregate(
      const std::vector<Slice>& messages, const BasSignature& agg,
      BasContext::HashMode mode = BasContext::HashMode::kSecure) const;

  /// Verify many aggregate claims at once. Verdict-identical to calling
  /// VerifyAggregate per claim, but all messages cross the multi-buffer
  /// SHA front end in one pass (kFast) and the per-claim hash-sum points
  /// are finalized with ONE shared Montgomery batch inversion — the
  /// client-side mirror of BasContext::FinalizeBatch.
  std::vector<bool> VerifyAggregateBatch(
      const std::vector<BasAggregateClaim>& claims,
      BasContext::HashMode mode = BasContext::HashMode::kSecure) const;

  const ECPoint& point() const { return pk_; }
  const BasContext& context() const { return *ctx_; }

 private:
  std::shared_ptr<const BasContext> ctx_;
  ECPoint pk_;
};

class BasPrivateKey {
 public:
  static BasPrivateKey Generate(std::shared_ptr<const BasContext> ctx,
                                Rng* rng);

  /// sigma = x * H(m).
  BasSignature Sign(Slice message,
                    BasContext::HashMode mode =
                        BasContext::HashMode::kSecure) const;

  const BasPublicKey& public_key() const { return pub_; }

 private:
  std::shared_ptr<const BasContext> ctx_;
  BigInt x_;
  BasPublicKey pub_;
};

}  // namespace authdb

#endif  // AUTHDB_CRYPTO_BAS_H_
