#ifndef AUTHDB_CRYPTO_BLOOM_H_
#define AUTHDB_CRYPTO_BLOOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/slice.h"
#include "crypto/sha.h"

namespace authdb {

/// Bloom filter (Bloom, CACM'70) with k hash functions derived by double
/// hashing from a SHA-256 of the key. Used by the paper's BF equi-join
/// verification (Section 3.5): the data aggregator certifies per-partition
/// filters over S.B so unmatched R records can be proven absent.
class BloomFilter {
 public:
  /// `m_bits` filter bits, `k` hash functions.
  BloomFilter(size_t m_bits, int k);

  /// Configuration with `bits_per_key` bits per distinct key and the
  /// FP-optimal k = m/b * ln 2 (Section 2.1 of the paper).
  static BloomFilter WithBitsPerKey(size_t n_keys, double bits_per_key);

  /// Expected false-positive rate (1 - e^{-kb/m})^k from Eq. (1).
  static double ExpectedFpRate(size_t m_bits, size_t b_keys, int k);
  /// FP rate at the optimal k: 0.6185^{m/b}.
  static double OptimalFpRate(double bits_per_key) {
    return std::pow(0.6185, bits_per_key);
  }

  void Add(Slice key);
  bool MayContain(Slice key) const;

  void AddInt64(int64_t key);
  bool MayContainInt64(int64_t key) const;

  size_t bit_count() const { return m_bits_; }
  int hash_count() const { return k_; }
  size_t byte_size() const { return bits_.size(); }
  size_t ones() const;
  void Clear();

  /// Raw bit array (for serialization / certification).
  const std::vector<uint8_t>& bytes() const { return bits_; }
  /// Digest over (m, k, bits) — what the data aggregator signs.
  Digest160 CertificationDigest() const;

 private:
  void Positions(Slice key, std::vector<size_t>* out) const;
  size_t m_bits_;
  int k_;
  std::vector<uint8_t> bits_;
};

}  // namespace authdb

#endif  // AUTHDB_CRYPTO_BLOOM_H_
