#ifndef AUTHDB_CRYPTO_BLOOM_H_
#define AUTHDB_CRYPTO_BLOOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/slice.h"
#include "crypto/sha.h"

namespace authdb {

/// Two 64-bit hash words per key — everything a blocked filter needs: h1
/// selects the cache-line block (and the in-block probe stride), h2 seeds
/// the in-block bit positions. Precomputable in bulk so the hot probe loop
/// never re-hashes.
struct BloomHash {
  uint64_t h1;
  uint64_t h2;
};

/// Register-blocked Bloom filter for the paper's BF equi-join verification
/// (Section 3.5): the data aggregator certifies per-partition filters over
/// S.B so unmatched R records can be proven absent.
///
/// Layout: the bit array is split into 64-byte (cache-line) blocks. A key
/// hashes to exactly one block, and all k bit positions are derived from
/// its two hash words inside that block — one memory line touched per
/// probe instead of a k-way scatter over the flat array. The filter is
/// mergeable: two filters with identical geometry (m, k) OR together
/// bit-for-bit, so an insert-only delta filter can refresh a live
/// partition without a full rebuild (deletes still force one — Bloom
/// filters cannot forget). Determinism contract: Add/Merge order never
/// changes the bit array, so the data aggregator and the query server
/// reproduce bit-identical filters (and certification digests) from the
/// same inputs.
class BloomFilter {
 public:
  static constexpr size_t kBlockBytes = 64;
  static constexpr size_t kBlockBits = kBlockBytes * 8;  // 512

  /// Empty (null-geometry) filter: zero bits, zero hashes, probes are
  /// always negative, and merging it into anything is a no-op. The value
  /// a default-initialized CertifiedPartition and a pure-recertification
  /// delta carry.
  BloomFilter() = default;

  /// `m_bits` filter bits (rounded up to a whole number of 512-bit
  /// blocks), `k` hash functions.
  BloomFilter(size_t m_bits, int k);

  /// Configuration with `bits_per_key` bits per distinct key and the
  /// FP-optimal k = m/b * ln 2 (Section 2.1 of the paper).
  static BloomFilter WithBitsPerKey(size_t n_keys, double bits_per_key);

  /// Expected false-positive rate (1 - e^{-kb/m})^k from Eq. (1).
  static double ExpectedFpRate(size_t m_bits, size_t b_keys, int k);
  /// FP rate at the optimal k: 0.6185^{m/b}.
  static double OptimalFpRate(double bits_per_key) {
    return std::pow(0.6185, bits_per_key);
  }

  /// Bulk non-cryptographic key hashing. Sound here because filter
  /// contents are certified by the data aggregator's signature — the
  /// hash only needs to be deterministic across DA, server, and client,
  /// not collision-resistant against an adversary (a tampered filter
  /// fails the signed CertificationDigest regardless of the key hash).
  static BloomHash HashInt64(int64_t key);
  static BloomHash HashSlice(Slice key);
  static void HashKeys(const int64_t* keys, size_t n, BloomHash* out);

  void Add(Slice key) { AddHashed(HashSlice(key)); }
  bool MayContain(Slice key) const { return ProbeHashed(HashSlice(key)); }

  void AddInt64(int64_t key) { AddHashed(HashInt64(key)); }
  bool MayContainInt64(int64_t key) const {
    return ProbeHashed(HashInt64(key));
  }

  void AddHashed(BloomHash h);
  bool ProbeHashed(BloomHash h) const;

  /// Batch membership test: out[i] = 1 iff keys[i] may be present. Hashes
  /// in bulk, prefetches each key's block a tile ahead, then tests — the
  /// join hot path calls this once per (partition, batch) instead of
  /// per-key MayContainInt64.
  void ProbeMany(const int64_t* keys, size_t n, uint8_t* out) const;

  /// OR `other`'s bits into this filter. Returns false (and leaves this
  /// filter untouched) on geometry mismatch. Merging an empty filter is a
  /// no-op; merging into an empty filter copies `other`. Associative,
  /// commutative, idempotent — the delta-refresh protocol depends on the
  /// DA and the server reproducing bit-identical merged filters.
  bool Merge(const BloomFilter& other);

  bool SameGeometry(const BloomFilter& o) const {
    return m_bits_ == o.m_bits_ && k_ == o.k_;
  }

  size_t bit_count() const { return m_bits_; }
  int hash_count() const { return k_; }
  size_t byte_size() const { return bits_.size(); }
  size_t block_count() const { return bits_.size() / kBlockBytes; }
  size_t ones() const;
  void Clear();

  /// Raw bit array (for serialization / certification).
  const std::vector<uint8_t>& bytes() const { return bits_; }
  /// Digest over (layout version, m, k, bits) — what the data aggregator
  /// signs. The layout tag pins the blocked geometry: a verifier replaying
  /// this digest over a differently-laid-out bit array must fail.
  Digest160 CertificationDigest() const;

 private:
  size_t BlockOf(uint64_t h1) const {
    // Fastrange (Lemire): multiplicative map of the full 64-bit hash onto
    // [0, block_count) — no modulo, uses the high hash bits, leaving the
    // low bits independent for the in-block probe stride.
    return static_cast<size_t>(
        (static_cast<unsigned __int128>(h1) * block_count()) >> 64);
  }

  size_t m_bits_ = 0;
  int k_ = 0;
  std::vector<uint8_t> bits_;
};

/// Double-buffered filter pair in the style of Greengage's
/// bloom_merge/bloom_switch_current: writers prepare the next generation
/// in the shadow buffer (copy of current + merged delta) while readers
/// keep probing the current one, then flip. The flip itself is not
/// internally synchronized — callers publish it through their own barrier
/// (here: the server's EpochDescriptor swap, so readers on a pinned epoch
/// never observe a half-merged filter).
class DoubleBufferedBloom {
 public:
  explicit DoubleBufferedBloom(BloomFilter initial)
      : bufs_{std::move(initial), BloomFilter()} {}

  const BloomFilter& Current() const { return bufs_[current_]; }
  BloomFilter& Shadow() { return bufs_[1 - current_]; }

  /// Shadow := Current | delta. Returns false on geometry mismatch (the
  /// shadow is left equal to Current).
  bool MergeIntoShadow(const BloomFilter& delta) {
    bufs_[1 - current_] = bufs_[current_];
    return bufs_[1 - current_].Merge(delta);
  }

  void SwitchCurrent() { current_ = 1 - current_; }

  /// Move the current buffer out (ends this pair's useful life).
  BloomFilter TakeCurrent() { return std::move(bufs_[current_]); }

 private:
  BloomFilter bufs_[2];
  int current_ = 0;
};

}  // namespace authdb

#endif  // AUTHDB_CRYPTO_BLOOM_H_
