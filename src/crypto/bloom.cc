#include "crypto/bloom.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace authdb {

BloomFilter::BloomFilter(size_t m_bits, int k) : m_bits_(m_bits), k_(k) {
  AUTHDB_CHECK(m_bits > 0 && k > 0);
  bits_.assign((m_bits + 7) / 8, 0);
}

BloomFilter BloomFilter::WithBitsPerKey(size_t n_keys, double bits_per_key) {
  size_t m = std::max<size_t>(8, static_cast<size_t>(
                                     std::ceil(n_keys * bits_per_key)));
  int k = std::max(1, static_cast<int>(std::round(bits_per_key * 0.6931)));
  return BloomFilter(m, k);
}

double BloomFilter::ExpectedFpRate(size_t m_bits, size_t b_keys, int k) {
  double exponent = -static_cast<double>(k) * b_keys / m_bits;
  return std::pow(1.0 - std::exp(exponent), k);
}

void BloomFilter::Positions(Slice key, std::vector<size_t>* out) const {
  Digest256 d = Sha256::Hash(key);
  uint64_t h1 = 0, h2 = 0;
  for (int i = 0; i < 8; ++i) {
    h1 = (h1 << 8) | d.bytes[i];
    h2 = (h2 << 8) | d.bytes[8 + i];
  }
  h2 |= 1;  // make the step odd so probes cover the table
  out->clear();
  for (int i = 0; i < k_; ++i) {
    out->push_back((h1 + static_cast<uint64_t>(i) * h2) % m_bits_);
  }
}

void BloomFilter::Add(Slice key) {
  std::vector<size_t> pos;
  Positions(key, &pos);
  for (size_t p : pos) bits_[p / 8] |= 1u << (p % 8);
}

bool BloomFilter::MayContain(Slice key) const {
  std::vector<size_t> pos;
  Positions(key, &pos);
  for (size_t p : pos) {
    if (!(bits_[p / 8] & (1u << (p % 8)))) return false;
  }
  return true;
}

void BloomFilter::AddInt64(int64_t key) {
  uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<uint64_t>(key) >> (8 * i);
  Add(Slice(buf, 8));
}

bool BloomFilter::MayContainInt64(int64_t key) const {
  uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<uint64_t>(key) >> (8 * i);
  return MayContain(Slice(buf, 8));
}

size_t BloomFilter::ones() const {
  size_t n = 0;
  for (uint8_t b : bits_) n += __builtin_popcount(b);
  return n;
}

void BloomFilter::Clear() { std::fill(bits_.begin(), bits_.end(), 0); }

Digest160 BloomFilter::CertificationDigest() const {
  Sha1 h;
  ByteBuffer header;
  header.PutU64(m_bits_);
  header.PutU32(static_cast<uint32_t>(k_));
  h.Update(header.AsSlice());
  h.Update(Slice(bits_));
  return h.Finish();
}

}  // namespace authdb
