#include "crypto/bloom.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace authdb {

namespace {

// Certification-digest layout tag ("BLK1"): pins the blocked geometry and
// the hash scheme below. Any change to BlockOf/bit-position derivation
// must bump this, or a stale verifier would accept digests over a layout
// it probes differently.
constexpr uint32_t kBlockedLayoutTag = 0x424c4b31;

// splitmix64 finalizer (Steele et al.) — full-avalanche 64-bit mix. Two
// fixed seed offsets yield the two independent hash words per key.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr uint64_t kSeed1 = 0x87c37b91114253d5ULL;
constexpr uint64_t kSeed2 = 0x4cf5ad432745937fULL;

// murmur64A-style hash over arbitrary bytes, for Slice keys.
uint64_t HashBytes(const uint8_t* data, size_t n, uint64_t seed) {
  constexpr uint64_t kMul = 0xc6a4a7935bd1e995ULL;
  constexpr int kShift = 47;
  uint64_t h = seed ^ (n * kMul);
  const uint8_t* end = data + (n & ~size_t{7});
  for (const uint8_t* p = data; p != end; p += 8) {
    uint64_t k;
    std::memcpy(&k, p, 8);
    k *= kMul;
    k ^= k >> kShift;
    k *= kMul;
    h ^= k;
    h *= kMul;
  }
  uint64_t tail = 0;
  for (size_t i = 0; i < (n & 7); ++i) {
    tail |= static_cast<uint64_t>(end[i]) << (8 * i);
  }
  if (n & 7) {
    h ^= tail;
    h *= kMul;
  }
  h ^= h >> kShift;
  h *= kMul;
  h ^= h >> kShift;
  return h;
}

}  // namespace

BloomFilter::BloomFilter(size_t m_bits, int k) : k_(k) {
  AUTHDB_CHECK(m_bits > 0 && k > 0);
  size_t blocks = (m_bits + kBlockBits - 1) / kBlockBits;
  m_bits_ = blocks * kBlockBits;
  bits_.assign(blocks * kBlockBytes, 0);
}

BloomFilter BloomFilter::WithBitsPerKey(size_t n_keys, double bits_per_key) {
  size_t m = std::max<size_t>(8, static_cast<size_t>(
                                     std::ceil(n_keys * bits_per_key)));
  int k = std::max(1, static_cast<int>(std::round(bits_per_key * 0.6931)));
  return BloomFilter(m, k);
}

double BloomFilter::ExpectedFpRate(size_t m_bits, size_t b_keys, int k) {
  double exponent = -static_cast<double>(k) * b_keys / m_bits;
  return std::pow(1.0 - std::exp(exponent), k);
}

BloomHash BloomFilter::HashInt64(int64_t key) {
  uint64_t x = static_cast<uint64_t>(key);
  return BloomHash{Mix64(x ^ kSeed1), Mix64(x ^ kSeed2)};
}

BloomHash BloomFilter::HashSlice(Slice key) {
  return BloomHash{HashBytes(key.data(), key.size(), kSeed1),
                   HashBytes(key.data(), key.size(), kSeed2)};
}

void BloomFilter::HashKeys(const int64_t* keys, size_t n, BloomHash* out) {
  for (size_t i = 0; i < n; ++i) out[i] = HashInt64(keys[i]);
}

void BloomFilter::AddHashed(BloomHash h) {
  AUTHDB_CHECK(m_bits_ > 0);
  uint8_t* block = bits_.data() + BlockOf(h.h1) * kBlockBytes;
  uint64_t step = h.h1 | 1;  // odd stride covers the 512-bit block
  uint64_t pos = h.h2;
  for (int i = 0; i < k_; ++i, pos += step) {
    uint64_t bit = pos & (kBlockBits - 1);
    block[bit >> 3] |= static_cast<uint8_t>(1u << (bit & 7));
  }
}

bool BloomFilter::ProbeHashed(BloomHash h) const {
  if (m_bits_ == 0) return false;
  const uint8_t* block = bits_.data() + BlockOf(h.h1) * kBlockBytes;
  uint64_t step = h.h1 | 1;
  uint64_t pos = h.h2;
  for (int i = 0; i < k_; ++i, pos += step) {
    uint64_t bit = pos & (kBlockBits - 1);
    if (!(block[bit >> 3] & (1u << (bit & 7)))) return false;
  }
  return true;
}

void BloomFilter::ProbeMany(const int64_t* keys, size_t n,
                            uint8_t* out) const {
  if (m_bits_ == 0) {
    std::memset(out, 0, n);
    return;
  }
  // Tile: bulk-hash a stripe, prefetch every block it will touch, then
  // test. By the time the probe loop reaches a key, its cache line is in
  // flight or resident — the misses overlap instead of serializing.
  constexpr size_t kTile = 32;
  BloomHash hashes[kTile];
  for (size_t base = 0; base < n; base += kTile) {
    size_t count = std::min(kTile, n - base);
    HashKeys(keys + base, count, hashes);
    for (size_t j = 0; j < count; ++j) {
      __builtin_prefetch(bits_.data() + BlockOf(hashes[j].h1) * kBlockBytes);
    }
    for (size_t j = 0; j < count; ++j) {
      out[base + j] = ProbeHashed(hashes[j]) ? 1 : 0;
    }
  }
}

bool BloomFilter::Merge(const BloomFilter& other) {
  if (other.m_bits_ == 0) return true;  // empty delta: pure no-op
  if (m_bits_ == 0) {
    *this = other;
    return true;
  }
  if (!SameGeometry(other)) return false;
  size_t words = bits_.size() / 8;
  for (size_t i = 0; i < words; ++i) {
    uint64_t a, b;
    std::memcpy(&a, bits_.data() + i * 8, 8);
    std::memcpy(&b, other.bits_.data() + i * 8, 8);
    a |= b;
    std::memcpy(bits_.data() + i * 8, &a, 8);
  }
  return true;
}

size_t BloomFilter::ones() const {
  size_t n = 0;
  size_t words = bits_.size() / 8;
  for (size_t i = 0; i < words; ++i) {
    uint64_t w;
    std::memcpy(&w, bits_.data() + i * 8, 8);
    n += static_cast<size_t>(__builtin_popcountll(w));
  }
  return n;
}

void BloomFilter::Clear() { std::fill(bits_.begin(), bits_.end(), 0); }

Digest160 BloomFilter::CertificationDigest() const {
  Sha1 h;
  ByteBuffer header;
  header.PutU32(kBlockedLayoutTag);
  header.PutU64(m_bits_);
  header.PutU32(static_cast<uint32_t>(k_));
  h.Update(header.AsSlice());
  h.Update(Slice(bits_));
  return h.Finish();
}

}  // namespace authdb
