#include "crypto/pairing.h"

#include "common/logging.h"

namespace authdb {

TatePairing::TatePairing(const CurveGroup* curve)
    : curve_(curve), fp2_(&curve->field()) {}

Fp2Elem TatePairing::FinalExponentiation(const Fp2Elem& f) const {
  // (p^2 - 1)/r = (p - 1) * cofactor, since p + 1 = cofactor * r.
  // f^(p-1) = conj(f) / f  (Frobenius is conjugation for p = 3 mod 4).
  Fp2Elem g = fp2_.Mul(fp2_.Conj(f), fp2_.Inv(f));
  return fp2_.Exp(g, curve_->cofactor());
}

Fp2Elem TatePairing::Pair(const ECPoint& p, const ECPoint& q) const {
  if (p.infinity || q.infinity) return fp2_.One();
  const PrimeField& f = curve_->field();

  // psi(Q) = (-xq, i*yq). Line values at psi(Q):
  //   non-vertical line through (xt, yt) with slope lam:
  //     l = i*yq - yt - lam*(-xq - xt)
  //       = [lam*(xq + xt) - yt] + i*[yq]
  // The imaginary part yq is nonzero (Q has odd prime order, so yq != 0),
  // hence line values are never zero. Vertical lines evaluate into F_p and
  // are skipped (denominator elimination, embedding degree 2).
  const BigInt& xq = q.x;
  const BigInt& yq = q.y;
  const BigInt three = f.FromU64(3);

  Fp2Elem acc = fp2_.One();
  BigInt xt = p.x, yt = p.y;
  bool t_infinity = false;
  const BigInt& r = curve_->order();

  for (int i = r.BitLength() - 2; i >= 0; --i) {
    if (t_infinity) break;
    // Doubling step. yt != 0 because the subgroup order is odd.
    AUTHDB_DCHECK(!yt.IsZero());
    BigInt lam = f.Mul(f.Add(f.Mul(three, f.Sqr(xt)), curve_->a_mont()),
                       f.Inv(f.Dbl(yt)));
    Fp2Elem line = fp2_.Make(f.Sub(f.Mul(lam, f.Add(xq, xt)), yt), yq);
    acc = fp2_.Mul(fp2_.Sqr(acc), line);
    BigInt x2 = f.Sub(f.Sqr(lam), f.Dbl(xt));
    yt = f.Sub(f.Mul(lam, f.Sub(xt, x2)), yt);
    xt = x2;

    if (r.Bit(i)) {
      // Addition step: line through T and P.
      if (f.Equal(xt, p.x)) {
        if (f.Equal(yt, p.y)) {
          // T == P: tangent doubling (cannot happen for prime r > 2, but
          // handle defensively).
          BigInt lam2 =
              f.Mul(f.Add(f.Mul(three, f.Sqr(xt)), curve_->a_mont()),
                    f.Inv(f.Dbl(yt)));
          Fp2Elem l2 = fp2_.Make(f.Sub(f.Mul(lam2, f.Add(xq, xt)), yt), yq);
          acc = fp2_.Mul(acc, l2);
          BigInt x3 = f.Sub(f.Sqr(lam2), f.Dbl(xt));
          yt = f.Sub(f.Mul(lam2, f.Sub(xt, x3)), yt);
          xt = x3;
        } else {
          // T == -P: vertical line (an F_p value) — skip; T becomes O.
          // This is the final addition of the loop (T = (r-1)P).
          t_infinity = true;
        }
      } else {
        BigInt lam2 = f.Mul(f.Sub(p.y, yt), f.Inv(f.Sub(p.x, xt)));
        Fp2Elem line2 =
            fp2_.Make(f.Sub(f.Mul(lam2, f.Add(xq, p.x)), p.y), yq);
        acc = fp2_.Mul(acc, line2);
        BigInt x3 = f.Sub(f.Sub(f.Sqr(lam2), xt), p.x);
        yt = f.Sub(f.Mul(lam2, f.Sub(xt, x3)), yt);
        xt = x3;
      }
    }
  }
  return FinalExponentiation(acc);
}

}  // namespace authdb
