#include "crypto/bitmap.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace authdb {

Bitmap::Bitmap(size_t nbits) { Resize(nbits); }

void Bitmap::Resize(size_t nbits) {
  nbits_ = nbits;
  words_.resize((nbits + 63) / 64, 0);
}

void Bitmap::Set(size_t i) {
  AUTHDB_DCHECK(i < nbits_);
  words_[i / 64] |= uint64_t{1} << (i % 64);
}

void Bitmap::Clear(size_t i) {
  AUTHDB_DCHECK(i < nbits_);
  words_[i / 64] &= ~(uint64_t{1} << (i % 64));
}

bool Bitmap::Get(size_t i) const {
  if (i >= nbits_) return false;
  return (words_[i / 64] >> (i % 64)) & 1;
}

void Bitmap::Reset() { std::fill(words_.begin(), words_.end(), 0); }

size_t Bitmap::CountOnes() const {
  size_t n = 0;
  for (uint64_t w : words_) n += __builtin_popcountll(w);
  return n;
}

std::vector<uint64_t> Bitmap::OnesPositions() const {
  std::vector<uint64_t> out;
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w) {
      int b = __builtin_ctzll(w);
      out.push_back(wi * 64 + b);
      w &= w - 1;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// VarintGapCodec

namespace {
void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

uint64_t GetVarint(const uint8_t* data, size_t size, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < size) {
    uint8_t b = data[(*pos)++];
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
  }
  AUTHDB_CHECK(false && "truncated varint");
  return 0;
}
}  // namespace

std::vector<uint8_t> VarintGapCodec::Encode(const Bitmap& bm) const {
  std::vector<uint8_t> out;
  PutVarint(&out, bm.size());
  uint64_t prev = 0;
  bool first = true;
  for (uint64_t pos : bm.OnesPositions()) {
    PutVarint(&out, first ? pos : pos - prev);
    prev = pos;
    first = false;
  }
  return out;
}

Bitmap VarintGapCodec::Decode(Slice data) const {
  size_t pos = 0;
  uint64_t nbits = GetVarint(data.data(), data.size(), &pos);
  Bitmap bm(nbits);
  uint64_t cur = 0;
  bool first = true;
  while (pos < data.size()) {
    uint64_t gap = GetVarint(data.data(), data.size(), &pos);
    cur = first ? gap : cur + gap;
    first = false;
    bm.Set(cur);
  }
  return bm;
}

// ---------------------------------------------------------------------------
// WahCodec: 32-bit words; literal word = MSB 0 + 31 payload bits; fill word
// = MSB 1, next bit = fill value, low 30 bits = run length in 31-bit groups.

std::vector<uint8_t> WahCodec::Encode(const Bitmap& bm) const {
  std::vector<uint32_t> words;
  size_t ngroups = (bm.size() + 30) / 31;
  uint32_t run_val = 0;
  uint32_t run_len = 0;
  auto flush_run = [&]() {
    if (run_len > 0) {
      words.push_back(0x80000000u | (run_val << 30) | run_len);
      run_len = 0;
    }
  };
  for (size_t g = 0; g < ngroups; ++g) {
    uint32_t group = 0;
    for (size_t b = 0; b < 31; ++b) {
      size_t idx = g * 31 + b;
      if (idx < bm.size() && bm.Get(idx)) group |= 1u << b;
    }
    if (group == 0 || group == 0x7fffffffu) {
      uint32_t val = group == 0 ? 0 : 1;
      if (run_len > 0 && run_val != val) flush_run();
      run_val = val;
      ++run_len;
      if (run_len == 0x3fffffffu) flush_run();
    } else {
      flush_run();
      words.push_back(group);
    }
  }
  flush_run();
  std::vector<uint8_t> out;
  PutVarint(&out, bm.size());
  out.reserve(out.size() + words.size() * 4);
  for (uint32_t w : words) {
    out.push_back(w & 0xff);
    out.push_back((w >> 8) & 0xff);
    out.push_back((w >> 16) & 0xff);
    out.push_back((w >> 24) & 0xff);
  }
  return out;
}

Bitmap WahCodec::Decode(Slice data) const {
  size_t pos = 0;
  uint64_t nbits = GetVarint(data.data(), data.size(), &pos);
  Bitmap bm(nbits);
  size_t bit = 0;
  while (pos + 4 <= data.size()) {
    uint32_t w = data[pos] | (data[pos + 1] << 8) | (data[pos + 2] << 16) |
                 (uint32_t(data[pos + 3]) << 24);
    pos += 4;
    if (w & 0x80000000u) {
      uint32_t val = (w >> 30) & 1;
      uint32_t len = w & 0x3fffffffu;
      if (val) {
        for (uint64_t i = 0; i < uint64_t{len} * 31 && bit < nbits; ++i)
          bm.Set(bit + i);
      }
      bit += uint64_t{len} * 31;
    } else {
      for (int b = 0; b < 31 && bit + b < nbits; ++b) {
        if (w & (1u << b)) bm.Set(bit + b);
      }
      bit += 31;
    }
  }
  return bm;
}

}  // namespace authdb
