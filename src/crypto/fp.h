#ifndef AUTHDB_CRYPTO_FP_H_
#define AUTHDB_CRYPTO_FP_H_

#include <cstdint>
#include <memory>

#include "crypto/bignum.h"

namespace authdb {

/// Prime field F_p. Elements are BigInts kept in Montgomery form; all
/// arithmetic is constant-allocation Montgomery arithmetic. Conversions
/// happen only at serialization boundaries.
class PrimeField {
 public:
  explicit PrimeField(const BigInt& p)
      : p_(p), mont_(std::make_shared<MontgomeryContext>(p)) {
    // Precompute exponents for Euler criterion and sqrt (p = 3 mod 4).
    p_minus_1_half_ = BigInt::ShiftRight(BigInt::Sub(p_, BigInt(1)), 1);
    p_plus_1_quarter_ = BigInt::ShiftRight(BigInt::Add(p_, BigInt(1)), 2);
  }

  const BigInt& p() const { return p_; }
  int element_bytes() const { return (p_.BitLength() + 7) / 8; }

  /// Montgomery-form constants.
  BigInt Zero() const { return BigInt(); }
  BigInt One() const { return mont_->OneMont(); }

  BigInt FromPlain(const BigInt& a) const {
    return mont_->ToMont(BigInt::Compare(a, p_) >= 0 ? BigInt::Mod(a, p_) : a);
  }
  BigInt ToPlain(const BigInt& a) const { return mont_->FromMont(a); }
  BigInt FromU64(uint64_t v) const { return FromPlain(BigInt(v)); }

  BigInt Add(const BigInt& a, const BigInt& b) const { return mont_->Add(a, b); }
  BigInt Sub(const BigInt& a, const BigInt& b) const { return mont_->Sub(a, b); }
  BigInt Mul(const BigInt& a, const BigInt& b) const { return mont_->Mul(a, b); }
  BigInt Sqr(const BigInt& a) const { return mont_->Mul(a, a); }
  BigInt Neg(const BigInt& a) const {
    return a.IsZero() ? a : BigInt::Sub(p_, a);
  }
  BigInt Dbl(const BigInt& a) const { return Add(a, a); }

  /// Multiplicative inverse (extended binary GCD on the plain value; faster
  /// than a Fermat exponentiation at our field sizes). Zero maps to zero.
  BigInt Inv(const BigInt& a) const {
    if (a.IsZero()) return a;
    return mont_->ToMont(BigInt::ModInverse(mont_->FromMont(a), p_));
  }

  /// a^e with a in Montgomery form; result in Montgomery form.
  BigInt Exp(const BigInt& a, const BigInt& e) const {
    return mont_->ExpMont(a, e);
  }

  /// Euler criterion: true iff `a` is a quadratic residue (or zero).
  bool IsSquare(const BigInt& a) const {
    if (a.IsZero()) return true;
    BigInt t = Exp(a, p_minus_1_half_);
    return BigInt::Compare(t, One()) == 0;
  }

  /// Square root for p = 3 (mod 4): a^((p+1)/4). Caller must ensure `a` is a
  /// quadratic residue.
  BigInt Sqrt(const BigInt& a) const { return Exp(a, p_plus_1_quarter_); }

  bool Equal(const BigInt& a, const BigInt& b) const {
    return BigInt::Compare(a, b) == 0;
  }

 private:
  BigInt p_;
  std::shared_ptr<MontgomeryContext> mont_;
  BigInt p_minus_1_half_;
  BigInt p_plus_1_quarter_;
};

}  // namespace authdb

#endif  // AUTHDB_CRYPTO_FP_H_
