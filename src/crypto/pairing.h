#ifndef AUTHDB_CRYPTO_PAIRING_H_
#define AUTHDB_CRYPTO_PAIRING_H_

#include "crypto/ec.h"
#include "crypto/fp2.h"

namespace authdb {

/// Reduced Tate pairing with distortion map on the supersingular curve
/// y^2 = x^3 + x over F_p, p = 3 (mod 4):
///
///   e(P, Q) = f_{r,P}( psi(Q) )^((p^2-1)/r),   psi(x, y) = (-x, i*y).
///
/// Both arguments are points in the prime-order-r subgroup of E(F_p); the
/// result lives in the order-r subgroup mu_r of F_p^2*. This is the pairing
/// underlying the Bilinear Aggregate Signature scheme (BAS, Boneh et al.)
/// adopted by the paper.
///
/// Denominator elimination: the embedding degree is 2, so line denominators
/// and vertical lines evaluate into F_p and are annihilated by the final
/// exponentiation (p^2-1)/r = (p-1) * cofactor; they are skipped.
class TatePairing {
 public:
  /// The curve must have been constructed with a=1, b=0 and cofactor
  /// c = (p+1)/r.
  explicit TatePairing(const CurveGroup* curve);

  /// Compute e(P, Q). Returns 1 (the Fp2 one) if either point is infinity.
  Fp2Elem Pair(const ECPoint& p, const ECPoint& q) const;

  /// Pairing-value equality, the verification predicate.
  bool Equal(const Fp2Elem& a, const Fp2Elem& b) const {
    return fp2_.Equal(a, b);
  }

  const Fp2Field& fp2() const { return fp2_; }

 private:
  /// f^((p^2-1)/r) = (conj(f)/f)^cofactor.
  Fp2Elem FinalExponentiation(const Fp2Elem& f) const;

  const CurveGroup* curve_;
  Fp2Field fp2_;
};

}  // namespace authdb

#endif  // AUTHDB_CRYPTO_PAIRING_H_
