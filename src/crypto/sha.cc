#include "crypto/sha.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>

#include "crypto/simd/sha_multibuf.h"

namespace authdb {

namespace {
inline uint32_t Rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }
inline uint32_t Rotr32(uint32_t x, int k) { return (x >> k) | (x << (32 - k)); }
inline uint32_t LoadBE32(const uint8_t* p) {
  return (uint32_t(p[0]) << 24) | (uint32_t(p[1]) << 16) |
         (uint32_t(p[2]) << 8) | uint32_t(p[3]);
}
inline void StoreBE32(uint8_t* p, uint32_t v) {
  p[0] = v >> 24;
  p[1] = v >> 16;
  p[2] = v >> 8;
  p[3] = v;
}

const char* kHexDigits = "0123456789abcdef";

template <size_t N>
std::string BytesToHex(const std::array<uint8_t, N>& b) {
  std::string out;
  out.reserve(N * 2);
  for (uint8_t c : b) {
    out.push_back(kHexDigits[c >> 4]);
    out.push_back(kHexDigits[c & 0xf]);
  }
  return out;
}
}  // namespace

std::string Digest160::ToHex() const { return BytesToHex(bytes); }
std::string Digest256::ToHex() const { return BytesToHex(bytes); }

// ---------------------------------------------------------------------------
// SHA-1

void Sha1::Reset() {
  h_[0] = 0x67452301;
  h_[1] = 0xEFCDAB89;
  h_[2] = 0x98BADCFE;
  h_[3] = 0x10325476;
  h_[4] = 0xC3D2E1F0;
  length_ = 0;
  buffered_ = 0;
}

void Sha1::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) w[i] = LoadBE32(block + 4 * i);
  for (int i = 16; i < 80; ++i)
    w[i] = Rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    uint32_t tmp = Rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl32(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::Update(Slice data) {
  const uint8_t* p = data.data();
  size_t n = data.size();
  length_ += n;
  if (buffered_ > 0) {
    size_t take = std::min(n, sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    n -= take;
    if (buffered_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffered_ = 0;
    }
  }
  while (n >= 64) {
    ProcessBlock(p);
    p += 64;
    n -= 64;
  }
  if (n > 0) {
    std::memcpy(buffer_, p, n);
    buffered_ = n;
  }
}

Digest160 Sha1::Finish() {
  uint64_t bit_len = length_ * 8;
  uint8_t pad = 0x80;
  Update(Slice(&pad, 1));
  uint8_t zero = 0;
  while (buffered_ != 56) Update(Slice(&zero, 1));
  uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) len_be[i] = bit_len >> (56 - 8 * i);
  Update(Slice(len_be, 8));
  Digest160 out;
  for (int i = 0; i < 5; ++i) StoreBE32(out.bytes.data() + 4 * i, h_[i]);
  Reset();
  return out;
}

Digest160 Sha1::Hash(Slice data) {
  Sha1 h;
  h.Update(data);
  return h.Finish();
}

void Sha1::HashMany(const Slice* msgs, size_t count, Digest160* out) {
  simd::Sha1HashMany(msgs, count, out);
}

Digest160 Sha1::HashPair(const Digest160& a, const Digest160& b) {
  Sha1 h;
  h.Update(a.AsSlice());
  h.Update(b.AsSlice());
  return h.Finish();
}

// ---------------------------------------------------------------------------
// SHA-256

namespace {
constexpr uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};
}  // namespace

void Sha256::Reset() {
  h_[0] = 0x6a09e667;
  h_[1] = 0xbb67ae85;
  h_[2] = 0x3c6ef372;
  h_[3] = 0xa54ff53a;
  h_[4] = 0x510e527f;
  h_[5] = 0x9b05688c;
  h_[6] = 0x1f83d9ab;
  h_[7] = 0x5be0cd19;
  length_ = 0;
  buffered_ = 0;
}

void Sha256::ProcessBlock(const uint8_t* block) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = LoadBE32(block + 4 * i);
  for (int i = 16; i < 64; ++i) {
    uint32_t s0 = Rotr32(w[i - 15], 7) ^ Rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
    uint32_t s1 = Rotr32(w[i - 2], 17) ^ Rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
  for (int i = 0; i < 64; ++i) {
    uint32_t s1 = Rotr32(e, 6) ^ Rotr32(e, 11) ^ Rotr32(e, 25);
    uint32_t ch = (e & f) ^ (~e & g);
    uint32_t t1 = h + s1 + ch + kSha256K[i] + w[i];
    uint32_t s0 = Rotr32(a, 2) ^ Rotr32(a, 13) ^ Rotr32(a, 22);
    uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += h;
}

void Sha256::Update(Slice data) {
  const uint8_t* p = data.data();
  size_t n = data.size();
  length_ += n;
  if (buffered_ > 0) {
    size_t take = std::min(n, sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    n -= take;
    if (buffered_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffered_ = 0;
    }
  }
  while (n >= 64) {
    ProcessBlock(p);
    p += 64;
    n -= 64;
  }
  if (n > 0) {
    std::memcpy(buffer_, p, n);
    buffered_ = n;
  }
}

Digest256 Sha256::Finish() {
  uint64_t bit_len = length_ * 8;
  uint8_t pad = 0x80;
  Update(Slice(&pad, 1));
  uint8_t zero = 0;
  while (buffered_ != 56) Update(Slice(&zero, 1));
  uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) len_be[i] = bit_len >> (56 - 8 * i);
  Update(Slice(len_be, 8));
  Digest256 out;
  for (int i = 0; i < 8; ++i) StoreBE32(out.bytes.data() + 4 * i, h_[i]);
  Reset();
  return out;
}

Digest256 Sha256::Hash(Slice data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

void Sha256::HashMany(const Slice* msgs, size_t count, Digest256* out) {
  simd::Sha256HashMany(msgs, count, out);
}

}  // namespace authdb
