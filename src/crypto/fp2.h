#ifndef AUTHDB_CRYPTO_FP2_H_
#define AUTHDB_CRYPTO_FP2_H_

#include "crypto/fp.h"

namespace authdb {

/// Element of the quadratic extension F_p^2 = F_p[i] / (i^2 + 1).
/// Valid because p = 3 (mod 4) makes -1 a non-residue.
struct Fp2Elem {
  BigInt re, im;  // Montgomery form
};

/// Arithmetic in F_p^2, layered on a PrimeField. Pairing values live here.
class Fp2Field {
 public:
  explicit Fp2Field(const PrimeField* fp) : fp_(fp) {}

  Fp2Elem Zero() const { return Fp2Elem{fp_->Zero(), fp_->Zero()}; }
  Fp2Elem One() const { return Fp2Elem{fp_->One(), fp_->Zero()}; }
  Fp2Elem FromFp(const BigInt& a) const { return Fp2Elem{a, fp_->Zero()}; }
  Fp2Elem Make(const BigInt& re, const BigInt& im) const {
    return Fp2Elem{re, im};
  }

  bool IsZero(const Fp2Elem& a) const {
    return a.re.IsZero() && a.im.IsZero();
  }
  bool Equal(const Fp2Elem& a, const Fp2Elem& b) const {
    return fp_->Equal(a.re, b.re) && fp_->Equal(a.im, b.im);
  }

  Fp2Elem Add(const Fp2Elem& a, const Fp2Elem& b) const {
    return Fp2Elem{fp_->Add(a.re, b.re), fp_->Add(a.im, b.im)};
  }
  Fp2Elem Sub(const Fp2Elem& a, const Fp2Elem& b) const {
    return Fp2Elem{fp_->Sub(a.re, b.re), fp_->Sub(a.im, b.im)};
  }
  Fp2Elem Neg(const Fp2Elem& a) const {
    return Fp2Elem{fp_->Neg(a.re), fp_->Neg(a.im)};
  }

  /// (a + bi)(c + di) = (ac - bd) + (ad + bc) i
  Fp2Elem Mul(const Fp2Elem& a, const Fp2Elem& b) const {
    BigInt ac = fp_->Mul(a.re, b.re);
    BigInt bd = fp_->Mul(a.im, b.im);
    BigInt ad = fp_->Mul(a.re, b.im);
    BigInt bc = fp_->Mul(a.im, b.re);
    return Fp2Elem{fp_->Sub(ac, bd), fp_->Add(ad, bc)};
  }

  /// (a + bi)^2 = (a-b)(a+b) + 2ab i
  Fp2Elem Sqr(const Fp2Elem& a) const {
    BigInt t1 = fp_->Sub(a.re, a.im);
    BigInt t2 = fp_->Add(a.re, a.im);
    BigInt ab = fp_->Mul(a.re, a.im);
    return Fp2Elem{fp_->Mul(t1, t2), fp_->Dbl(ab)};
  }

  /// Frobenius / complex conjugation: (a + bi)^p = a - bi when p = 3 mod 4.
  Fp2Elem Conj(const Fp2Elem& a) const {
    return Fp2Elem{a.re, fp_->Neg(a.im)};
  }

  /// (a + bi)^-1 = (a - bi) / (a^2 + b^2)
  Fp2Elem Inv(const Fp2Elem& a) const {
    BigInt norm = fp_->Add(fp_->Sqr(a.re), fp_->Sqr(a.im));
    BigInt ni = fp_->Inv(norm);
    return Fp2Elem{fp_->Mul(a.re, ni), fp_->Mul(fp_->Neg(a.im), ni)};
  }

  Fp2Elem Exp(const Fp2Elem& a, const BigInt& e) const {
    Fp2Elem acc = One();
    for (int i = e.BitLength() - 1; i >= 0; --i) {
      acc = Sqr(acc);
      if (e.Bit(i)) acc = Mul(acc, a);
    }
    return acc;
  }

  const PrimeField& fp() const { return *fp_; }

 private:
  const PrimeField* fp_;
};

}  // namespace authdb

#endif  // AUTHDB_CRYPTO_FP2_H_
