#ifndef AUTHDB_STORAGE_BUFFER_POOL_H_
#define AUTHDB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace authdb {

/// LRU buffer pool over a DiskManager. Pages are pinned while in use and
/// written back on eviction when dirty. Not thread-safe: the engine executes
/// storage operations single-threaded, and transaction concurrency is
/// modelled at the lock-manager / simulator level (DESIGN.md substitution
/// #3).
class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t capacity_pages);

  /// Pin and return a page. The pointer stays valid until Unpin.
  Page* Fetch(PageId id);
  /// Allocate a fresh page, pinned and zeroed.
  Page* New();
  /// Release a pin; `dirty` marks the page for write-back.
  void Unpin(Page* page, bool dirty);

  /// Write all dirty pages through to disk (pins unaffected).
  Status FlushAll();

  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  DiskManager* disk() { return disk_; }

 private:
  Page* GetFrame();  // evict if needed; returns a free frame

  DiskManager* disk_;
  size_t capacity_;
  std::vector<std::unique_ptr<Page>> frames_;
  std::unordered_map<PageId, Page*> table_;
  std::list<Page*> lru_;  // front = most recent; only unpinned pages listed
  std::unordered_map<Page*, std::list<Page*>::iterator> lru_pos_;
  uint64_t hits_ = 0, misses_ = 0;
};

/// RAII pin guard.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept {
    Release();
    pool_ = o.pool_;
    page_ = o.page_;
    dirty_ = o.dirty_;
    o.pool_ = nullptr;
    o.page_ = nullptr;
    return *this;
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  void MarkDirty() { dirty_ = true; }
  void Release() {
    if (page_ != nullptr && pool_ != nullptr) pool_->Unpin(page_, dirty_);
    page_ = nullptr;
    pool_ = nullptr;
  }

 private:
  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace authdb

#endif  // AUTHDB_STORAGE_BUFFER_POOL_H_
