#ifndef AUTHDB_STORAGE_RECORD_FILE_H_
#define AUTHDB_STORAGE_RECORD_FILE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace authdb {

using RecordId = uint64_t;
constexpr RecordId kInvalidRecordId = ~0ull;

/// Heap file of fixed-length records — the external record store under the
/// paper's authenticated B+-tree (Figure 2: leaf entries carry <key, sn,
/// rid> and the physical records live in an external file). Records are
/// addressed by slot number; a per-page occupancy bitmap tracks deletions.
///
/// Page layout: [u16 slot_count][bitmap][slot0][slot1]...
class RecordFile {
 public:
  /// Creates over an empty disk file, or reattaches to an existing one
  /// (record_len must match what the file was created with).
  RecordFile(BufferPool* pool, uint32_t record_len);

  /// Append a record; returns its rid. `data.size()` must equal record_len.
  Result<RecordId> Insert(Slice data);
  Status Update(RecordId rid, Slice data);
  Result<std::vector<uint8_t>> Read(RecordId rid) const;
  Status Delete(RecordId rid);
  bool Exists(RecordId rid) const;

  uint32_t record_len() const { return record_len_; }
  uint64_t record_count() const { return live_records_; }
  /// Highest rid ever allocated + 1 (rids are never reused).
  uint64_t rid_upper_bound() const { return next_rid_; }
  uint32_t slots_per_page() const { return slots_per_page_; }

  /// All rids co-resident in rid's disk page (the paper's active signature
  /// renewal piggybacks re-certification on the records sharing the fetched
  /// block; Section 3.1).
  std::vector<RecordId> RidsInSamePage(RecordId rid) const;

 private:
  struct Location {
    PageId page;
    uint32_t slot;
  };
  Location Locate(RecordId rid) const;
  bool SlotOccupied(const Page& page, uint32_t slot) const;
  void SetSlot(Page* page, uint32_t slot, bool occupied);

  BufferPool* pool_;
  uint32_t record_len_;
  uint32_t slots_per_page_;
  size_t bitmap_bytes_;
  uint64_t next_rid_ = 0;
  uint64_t live_records_ = 0;
};

}  // namespace authdb

#endif  // AUTHDB_STORAGE_RECORD_FILE_H_
