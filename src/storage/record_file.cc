#include "storage/record_file.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace authdb {

RecordFile::RecordFile(BufferPool* pool, uint32_t record_len)
    : pool_(pool), record_len_(record_len) {
  AUTHDB_CHECK(record_len >= 1 && record_len <= kPageSize - 16);
  // Solve slots * record_len + ceil(slots/8) + 2 <= kPageSize.
  slots_per_page_ = (kPageSize - 2) * 8 / (record_len_ * 8 + 1);
  AUTHDB_CHECK(slots_per_page_ >= 1);
  bitmap_bytes_ = (slots_per_page_ + 7) / 8;
  // Reattach: find the highest occupied slot across existing pages.
  DiskManager* disk = pool_->disk();
  for (PageId pid = 0; pid < disk->page_count(); ++pid) {
    Page* page = pool_->Fetch(pid);
    for (uint32_t s = 0; s < slots_per_page_; ++s) {
      if (SlotOccupied(*page, s)) {
        ++live_records_;
        next_rid_ = std::max<uint64_t>(next_rid_,
                                       uint64_t{pid} * slots_per_page_ + s + 1);
      }
    }
    pool_->Unpin(page, false);
  }
  if (disk->page_count() > 0) {
    next_rid_ = std::max<uint64_t>(
        next_rid_, uint64_t{disk->page_count() - 1} * slots_per_page_);
  }
}

RecordFile::Location RecordFile::Locate(RecordId rid) const {
  return Location{static_cast<PageId>(rid / slots_per_page_),
                  static_cast<uint32_t>(rid % slots_per_page_)};
}

bool RecordFile::SlotOccupied(const Page& page, uint32_t slot) const {
  return (page.data[2 + slot / 8] >> (slot % 8)) & 1;
}

void RecordFile::SetSlot(Page* page, uint32_t slot, bool occupied) {
  if (occupied) {
    page->data[2 + slot / 8] |= 1u << (slot % 8);
  } else {
    page->data[2 + slot / 8] &= ~(1u << (slot % 8));
  }
}

Result<RecordId> RecordFile::Insert(Slice data) {
  if (data.size() != record_len_)
    return Status::InvalidArgument("record length mismatch");
  RecordId rid = next_rid_++;
  Location loc = Locate(rid);
  Page* page;
  if (loc.page >= pool_->disk()->page_count()) {
    page = pool_->New();
    AUTHDB_CHECK(page->id == loc.page);
  } else {
    page = pool_->Fetch(loc.page);
  }
  std::memcpy(page->bytes() + 2 + bitmap_bytes_ + loc.slot * record_len_,
              data.data(), record_len_);
  SetSlot(page, loc.slot, true);
  pool_->Unpin(page, true);
  ++live_records_;
  return rid;
}

Status RecordFile::Update(RecordId rid, Slice data) {
  if (data.size() != record_len_)
    return Status::InvalidArgument("record length mismatch");
  if (rid >= next_rid_) return Status::NotFound("rid out of range");
  Location loc = Locate(rid);
  Page* page = pool_->Fetch(loc.page);
  if (!SlotOccupied(*page, loc.slot)) {
    pool_->Unpin(page, false);
    return Status::NotFound("record deleted");
  }
  std::memcpy(page->bytes() + 2 + bitmap_bytes_ + loc.slot * record_len_,
              data.data(), record_len_);
  pool_->Unpin(page, true);
  return Status::OK();
}

Result<std::vector<uint8_t>> RecordFile::Read(RecordId rid) const {
  if (rid >= next_rid_) return Status::NotFound("rid out of range");
  Location loc = Locate(rid);
  Page* page = pool_->Fetch(loc.page);
  if (!SlotOccupied(*page, loc.slot)) {
    pool_->Unpin(page, false);
    return Status::NotFound("record deleted");
  }
  const uint8_t* src = page->bytes() + 2 + bitmap_bytes_ + loc.slot * record_len_;
  std::vector<uint8_t> out(src, src + record_len_);
  pool_->Unpin(page, false);
  return out;
}

Status RecordFile::Delete(RecordId rid) {
  if (rid >= next_rid_) return Status::NotFound("rid out of range");
  Location loc = Locate(rid);
  Page* page = pool_->Fetch(loc.page);
  if (!SlotOccupied(*page, loc.slot)) {
    pool_->Unpin(page, false);
    return Status::NotFound("record already deleted");
  }
  SetSlot(page, loc.slot, false);
  pool_->Unpin(page, true);
  --live_records_;
  return Status::OK();
}

bool RecordFile::Exists(RecordId rid) const {
  if (rid >= next_rid_) return false;
  Location loc = Locate(rid);
  Page* page = pool_->Fetch(loc.page);
  bool occupied = SlotOccupied(*page, loc.slot);
  pool_->Unpin(page, false);
  return occupied;
}

std::vector<RecordId> RecordFile::RidsInSamePage(RecordId rid) const {
  std::vector<RecordId> out;
  if (rid >= next_rid_) return out;
  Location loc = Locate(rid);
  Page* page = pool_->Fetch(loc.page);
  for (uint32_t s = 0; s < slots_per_page_; ++s) {
    if (SlotOccupied(*page, s))
      out.push_back(uint64_t{loc.page} * slots_per_page_ + s);
  }
  pool_->Unpin(page, false);
  return out;
}

}  // namespace authdb
