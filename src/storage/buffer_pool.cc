#include "storage/buffer_pool.h"

#include <memory>

#include "common/logging.h"

namespace authdb {

BufferPool::BufferPool(DiskManager* disk, size_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages) {
  AUTHDB_CHECK(capacity_pages > 0);
}

Page* BufferPool::GetFrame() {
  if (frames_.size() < capacity_) {
    frames_.push_back(std::make_unique<Page>());
    return frames_.back().get();
  }
  // Evict the least-recently-used unpinned page.
  AUTHDB_CHECK(!lru_.empty() && "buffer pool exhausted: all pages pinned");
  Page* victim = lru_.back();
  lru_.pop_back();
  lru_pos_.erase(victim);
  if (victim->dirty) {
    Status s = disk_->WritePage(victim->id, victim->bytes());
    AUTHDB_CHECK(s.ok());
    victim->dirty = false;
  }
  table_.erase(victim->id);
  return victim;
}

Page* BufferPool::Fetch(PageId id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    ++hits_;
    Page* page = it->second;
    auto pos = lru_pos_.find(page);
    if (pos != lru_pos_.end()) {  // was unpinned; remove from LRU list
      lru_.erase(pos->second);
      lru_pos_.erase(pos);
    }
    ++page->pin_count;
    return page;
  }
  ++misses_;
  Page* frame = GetFrame();
  Status s = disk_->ReadPage(id, frame->bytes());
  AUTHDB_CHECK(s.ok());
  frame->id = id;
  frame->pin_count = 1;
  frame->dirty = false;
  table_[id] = frame;
  return frame;
}

Page* BufferPool::New() {
  PageId id = disk_->AllocatePage();
  Page* frame = GetFrame();
  frame->data.fill(0);
  frame->id = id;
  frame->pin_count = 1;
  frame->dirty = true;
  table_[id] = frame;
  return frame;
}

void BufferPool::Unpin(Page* page, bool dirty) {
  AUTHDB_CHECK(page->pin_count > 0);
  if (dirty) page->dirty = true;
  if (--page->pin_count == 0) {
    lru_.push_front(page);
    lru_pos_[page] = lru_.begin();
  }
}

Status BufferPool::FlushAll() {
  for (auto& frame : frames_) {
    if (frame->id != kInvalidPageId && frame->dirty) {
      AUTHDB_RETURN_NOT_OK(disk_->WritePage(frame->id, frame->bytes()));
      frame->dirty = false;
    }
  }
  return Status::OK();
}

}  // namespace authdb
