#ifndef AUTHDB_STORAGE_PAGE_H_
#define AUTHDB_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace authdb {

/// 4-KByte pages, matching the paper's experiment configuration (NTFS
/// default block size; Section 5.1).
constexpr size_t kPageSize = 4096;

using PageId = uint32_t;
constexpr PageId kInvalidPageId = 0xffffffffu;

/// A buffer-pool frame: raw page bytes plus bookkeeping.
struct Page {
  std::array<uint8_t, kPageSize> data{};
  PageId id = kInvalidPageId;
  int pin_count = 0;
  bool dirty = false;

  uint8_t* bytes() { return data.data(); }
  const uint8_t* bytes() const { return data.data(); }

  // Little-endian fixed-width accessors used by node/file layouts.
  template <typename T>
  T ReadAt(size_t off) const {
    T v;
    std::memcpy(&v, data.data() + off, sizeof(T));
    return v;
  }
  template <typename T>
  void WriteAt(size_t off, T v) {
    std::memcpy(data.data() + off, &v, sizeof(T));
  }
};

}  // namespace authdb

#endif  // AUTHDB_STORAGE_PAGE_H_
