#ifndef AUTHDB_STORAGE_DISK_MANAGER_H_
#define AUTHDB_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace authdb {

/// Physical-I/O counters. The discrete-event simulator charges a per-I/O
/// latency against these (substitution #5 in DESIGN.md): raw disk timings
/// inside a container are dominated by the host page cache, so experiments
/// count I/Os and cost them with a configurable model instead.
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  void Reset() { reads = writes = 0; }
};

/// Page-granularity storage. Backed by a file on disk, or by memory when
/// constructed with an empty path (used heavily by tests).
class DiskManager {
 public:
  /// `path` empty -> in-memory. An existing file is reopened.
  explicit DiskManager(const std::string& path);
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  Status ReadPage(PageId id, uint8_t* out);
  Status WritePage(PageId id, const uint8_t* data);
  /// Extend the file by one page; returns its id.
  PageId AllocatePage();

  PageId page_count() const { return page_count_; }
  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }
  bool in_memory() const { return file_ == nullptr; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;                      // disk mode
  std::vector<std::unique_ptr<uint8_t[]>> mem_;    // memory mode
  PageId page_count_ = 0;
  IoStats stats_;
};

}  // namespace authdb

#endif  // AUTHDB_STORAGE_DISK_MANAGER_H_
