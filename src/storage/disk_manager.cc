#include "storage/disk_manager.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/logging.h"

namespace authdb {

DiskManager::DiskManager(const std::string& path) : path_(path) {
  if (path_.empty()) return;  // in-memory mode
  file_ = std::fopen(path_.c_str(), "r+b");
  if (file_ == nullptr) file_ = std::fopen(path_.c_str(), "w+b");
  AUTHDB_CHECK(file_ != nullptr);
  std::fseek(file_, 0, SEEK_END);
  long size = std::ftell(file_);
  page_count_ = static_cast<PageId>(size / kPageSize);
}

DiskManager::~DiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

Status DiskManager::ReadPage(PageId id, uint8_t* out) {
  if (id >= page_count_)
    return Status::OutOfRange("page " + std::to_string(id));
  ++stats_.reads;
  if (file_ == nullptr) {
    std::memcpy(out, mem_[id].get(), kPageSize);
    return Status::OK();
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0)
    return Status::IOError("seek");
  if (std::fread(out, 1, kPageSize, file_) != kPageSize)
    return Status::IOError("short read");
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const uint8_t* data) {
  if (id >= page_count_)
    return Status::OutOfRange("page " + std::to_string(id));
  ++stats_.writes;
  if (file_ == nullptr) {
    std::memcpy(mem_[id].get(), data, kPageSize);
    return Status::OK();
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0)
    return Status::IOError("seek");
  if (std::fwrite(data, 1, kPageSize, file_) != kPageSize)
    return Status::IOError("short write");
  return Status::OK();
}

PageId DiskManager::AllocatePage() {
  PageId id = page_count_++;
  if (file_ == nullptr) {
    mem_.push_back(std::make_unique<uint8_t[]>(kPageSize));
    std::memset(mem_.back().get(), 0, kPageSize);
  } else {
    uint8_t zeros[kPageSize] = {0};
    std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET);
    AUTHDB_CHECK(std::fwrite(zeros, 1, kPageSize, file_) == kPageSize);
  }
  return id;
}

}  // namespace authdb
