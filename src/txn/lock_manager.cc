#include "txn/lock_manager.h"

#include <chrono>
#include <cstdint>
#include <string>

namespace authdb {

void LockManager::SkipAbandoned(ResourceState* s) {
  while (s->abandoned_tickets.count(s->serving_ticket)) {
    s->abandoned_tickets.erase(s->serving_ticket);
    ++s->serving_ticket;
  }
}

bool LockManager::Compatible(const ResourceState& s, TxnId txn,
                             LockMode mode) const {
  if (mode == LockMode::kShared) {
    return !s.has_exclusive || s.exclusive_holder == txn;
  }
  bool others_shared =
      !s.shared_holders.empty() &&
      !(s.shared_holders.size() == 1 && s.shared_holders.count(txn));
  return !others_shared && (!s.has_exclusive || s.exclusive_holder == txn);
}

Status LockManager::Acquire(TxnId txn, ResourceId res, LockMode mode,
                            uint64_t timeout_ms) {
  MutexLock lk(mu_);
  ResourceState& s = table_[res];
  // Idempotent re-acquire in a compatible mode.
  if (mode == LockMode::kShared && s.shared_holders.count(txn))
    return Status::OK();
  if (s.has_exclusive && s.exclusive_holder == txn) return Status::OK();

  uint64_t ticket = s.next_ticket++;
  bool waited = false;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (true) {
    ResourceState& cur = table_[res];
    // FIFO: only the front of the queue may take the grant. A granted
    // shared request advances serving_ticket so shared requests queued
    // behind it are admitted concurrently.
    if (cur.serving_ticket == ticket && Compatible(cur, txn, mode)) break;
    waited = true;
    if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
      ResourceState& st = table_[res];
      st.abandoned_tickets.insert(ticket);
      SkipAbandoned(&st);
      cv_.NotifyAll();
      return Status::Aborted("lock timeout on resource " +
                             std::to_string(res));
    }
  }
  ResourceState& granted = table_[res];
  ++granted.serving_ticket;
  SkipAbandoned(&granted);
  if (mode == LockMode::kShared) {
    granted.shared_holders.insert(txn);
  } else {
    granted.has_exclusive = true;
    granted.exclusive_holder = txn;
  }
  held_[txn].insert(res);
  if (waited) ++contention_;
  cv_.NotifyAll();
  return Status::OK();
}

void LockManager::Release(TxnId txn, ResourceId res) {
  MutexLock lk(mu_);
  auto it = table_.find(res);
  if (it == table_.end()) return;
  ResourceState& s = it->second;
  s.shared_holders.erase(txn);
  if (s.has_exclusive && s.exclusive_holder == txn) {
    s.has_exclusive = false;
    s.exclusive_holder = 0;
  }
  auto hit = held_.find(txn);
  if (hit != held_.end()) hit->second.erase(res);
  cv_.NotifyAll();
}

void LockManager::ReleaseAll(TxnId txn) {
  MutexLock lk(mu_);
  auto hit = held_.find(txn);
  if (hit == held_.end()) return;
  for (ResourceId res : hit->second) {
    auto it = table_.find(res);
    if (it == table_.end()) continue;
    it->second.shared_holders.erase(txn);
    if (it->second.has_exclusive && it->second.exclusive_holder == txn) {
      it->second.has_exclusive = false;
      it->second.exclusive_holder = 0;
    }
  }
  held_.erase(hit);
  cv_.NotifyAll();
}

uint64_t LockManager::contention_count() const {
  MutexLock lk(mu_);
  return contention_;
}

Status Transaction::Lock(ResourceId res, LockMode mode) {
  if (finished_) return Status::Internal("transaction already finished");
  if (any_ && res <= last_res_ && res != last_res_)
    return Status::InvalidArgument(
        "2PL ordered acquisition violated: resource " + std::to_string(res) +
        " after " + std::to_string(last_res_));
  Status s = lm_->Acquire(id_, res, mode);
  if (s.ok()) {
    last_res_ = res;
    any_ = true;
  }
  return s;
}

void Transaction::Finish() {
  if (!finished_) {
    lm_->ReleaseAll(id_);
    finished_ = true;
  }
}

}  // namespace authdb
