#ifndef AUTHDB_TXN_LOCK_MANAGER_H_
#define AUTHDB_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace authdb {

using TxnId = uint64_t;
using ResourceId = uint64_t;

/// The index-wide resource that MHT schemes must lock exclusively on every
/// update (the root digest); the paper's scheme locks only record-level
/// resources.
constexpr ResourceId kRootResource = 0;
inline ResourceId RecordResource(uint64_t rid) { return rid + 1; }

enum class LockMode { kShared, kExclusive };

/// Blocking shared/exclusive lock table with FIFO fairness, the concurrency
/// substrate for two-phase locking (Section 5.1: "all the transactions at
/// the QS follow the two-phase locking protocol").
///
/// Deadlock handling: acquisition in increasing resource order never
/// deadlocks (Transaction enforces it); out-of-order acquisition is
/// additionally guarded by a wound-free timeout that returns kAborted.
class LockManager {
 public:
  /// Blocks until granted (or timeout). Re-entrant upgrades are not
  /// supported; acquiring a lock already held (same mode) is a no-op.
  Status Acquire(TxnId txn, ResourceId res, LockMode mode,
                 uint64_t timeout_ms = 10'000) EXCLUDES(mu_);
  void Release(TxnId txn, ResourceId res) EXCLUDES(mu_);
  void ReleaseAll(TxnId txn) EXCLUDES(mu_);

  /// Observability: number of acquisitions that had to wait.
  uint64_t contention_count() const EXCLUDES(mu_);

 private:
  struct ResourceState {
    std::set<TxnId> shared_holders;
    TxnId exclusive_holder = 0;
    bool has_exclusive = false;
    uint64_t next_ticket = 0;    // FIFO fairness
    uint64_t serving_ticket = 0;
    std::set<uint64_t> abandoned_tickets;  // timed-out waiters to skip
  };
  static void SkipAbandoned(ResourceState* s);
  bool Compatible(const ResourceState& s, TxnId txn, LockMode mode) const;

  mutable Mutex mu_;
  CondVar cv_;
  std::map<ResourceId, ResourceState> table_ GUARDED_BY(mu_);
  std::map<TxnId, std::set<ResourceId>> held_ GUARDED_BY(mu_);
  uint64_t contention_ GUARDED_BY(mu_) = 0;
};

/// Two-phase-locking transaction handle: locks accumulate during the
/// growing phase and release together at Commit/Abort. Lock requests must
/// be issued in increasing resource order (checked) so that concurrent
/// transactions cannot deadlock.
class Transaction {
 public:
  Transaction(LockManager* lm, TxnId id) : lm_(lm), id_(id) {}
  ~Transaction() { Finish(); }
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  Status LockShared(ResourceId res) { return Lock(res, LockMode::kShared); }
  Status LockExclusive(ResourceId res) {
    return Lock(res, LockMode::kExclusive);
  }
  /// Release every lock (commit and abort are identical at this layer).
  void Finish();

  TxnId id() const { return id_; }

 private:
  Status Lock(ResourceId res, LockMode mode);
  LockManager* lm_;
  TxnId id_;
  ResourceId last_res_ = 0;
  bool any_ = false;
  bool finished_ = false;
};

}  // namespace authdb

#endif  // AUTHDB_TXN_LOCK_MANAGER_H_
