#include "index/btree.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace authdb {

namespace {
constexpr uint32_t kMagic = 0xADB7EE01;
constexpr size_t kNodeHeader = 12;  // is_leaf u8, pad u8, count u16, prev, next
// Meta page offsets.
constexpr size_t kMetaMagic = 0, kMetaRoot = 4, kMetaHeight = 8,
                 kMetaPayload = 12, kMetaCount = 16;
}  // namespace

BPlusTree::BPlusTree(BufferPool* pool, uint32_t payload_size)
    : pool_(pool), payload_size_(payload_size) {
  leaf_cap_ = (kPageSize - kNodeHeader) / (8 + payload_size_);
  internal_cap_ = (kPageSize - kNodeHeader - 4) / 12;
  AUTHDB_CHECK(leaf_cap_ >= 3 && internal_cap_ >= 3);
  if (pool_->disk()->page_count() == 0) {
    Page* meta = pool_->New();  // page 0
    AUTHDB_CHECK(meta->id == 0);
    pool_->Unpin(meta, true);
    Node root;
    root.id = AllocNode();
    root.is_leaf = true;
    StoreNode(root);
    root_ = root.id;
    height_ = 1;
    num_entries_ = 0;
    StoreMeta();
  } else {
    LoadMeta();
  }
}

void BPlusTree::LoadMeta() {
  Page* meta = pool_->Fetch(0);
  AUTHDB_CHECK(meta->ReadAt<uint32_t>(kMetaMagic) == kMagic);
  root_ = meta->ReadAt<uint32_t>(kMetaRoot);
  height_ = meta->ReadAt<uint32_t>(kMetaHeight);
  uint32_t stored_payload = meta->ReadAt<uint32_t>(kMetaPayload);
  AUTHDB_CHECK(stored_payload == payload_size_);
  num_entries_ = meta->ReadAt<uint64_t>(kMetaCount);
  pool_->Unpin(meta, false);
}

void BPlusTree::StoreMeta() const {
  Page* meta = pool_->Fetch(0);
  meta->WriteAt<uint32_t>(kMetaMagic, kMagic);
  meta->WriteAt<uint32_t>(kMetaRoot, root_);
  meta->WriteAt<uint32_t>(kMetaHeight, height_);
  meta->WriteAt<uint32_t>(kMetaPayload, payload_size_);
  meta->WriteAt<uint64_t>(kMetaCount, num_entries_);
  pool_->Unpin(meta, true);
}

PageId BPlusTree::AllocNode() const {
  Page* page = pool_->New();
  PageId id = page->id;
  pool_->Unpin(page, true);
  return id;
}

BPlusTree::Node BPlusTree::LoadNode(PageId id) const {
  Page* page = pool_->Fetch(id);
  Node node;
  node.id = id;
  node.is_leaf = page->ReadAt<uint8_t>(0) != 0;
  uint16_t count = page->ReadAt<uint16_t>(2);
  node.prev = page->ReadAt<PageId>(4);
  node.next = page->ReadAt<PageId>(8);
  if (node.is_leaf) {
    node.keys.resize(count);
    node.payloads.resize(count);
    size_t off = kNodeHeader;
    for (uint16_t i = 0; i < count; ++i) {
      node.keys[i] = page->ReadAt<int64_t>(off);
      off += 8;
      node.payloads[i].assign(page->bytes() + off,
                              page->bytes() + off + payload_size_);
      off += payload_size_;
    }
  } else {
    node.keys.resize(count);
    node.children.resize(count + 1);
    for (uint16_t i = 0; i < count; ++i)
      node.keys[i] = page->ReadAt<int64_t>(kNodeHeader + 8 * i);
    size_t child_off = kNodeHeader + 8 * internal_cap_;
    for (uint16_t i = 0; i <= count; ++i)
      node.children[i] = page->ReadAt<PageId>(child_off + 4 * i);
  }
  pool_->Unpin(page, false);
  return node;
}

void BPlusTree::StoreNode(const Node& node) const {
  Page* page = pool_->Fetch(node.id);
  page->WriteAt<uint8_t>(0, node.is_leaf ? 1 : 0);
  page->WriteAt<uint16_t>(2, static_cast<uint16_t>(node.keys.size()));
  page->WriteAt<PageId>(4, node.prev);
  page->WriteAt<PageId>(8, node.next);
  if (node.is_leaf) {
    size_t off = kNodeHeader;
    for (size_t i = 0; i < node.keys.size(); ++i) {
      page->WriteAt<int64_t>(off, node.keys[i]);
      off += 8;
      AUTHDB_DCHECK(node.payloads[i].size() == payload_size_);
      std::memcpy(page->bytes() + off, node.payloads[i].data(), payload_size_);
      off += payload_size_;
    }
  } else {
    for (size_t i = 0; i < node.keys.size(); ++i)
      page->WriteAt<int64_t>(kNodeHeader + 8 * i, node.keys[i]);
    size_t child_off = kNodeHeader + 8 * internal_cap_;
    for (size_t i = 0; i < node.children.size(); ++i)
      page->WriteAt<PageId>(child_off + 4 * i, node.children[i]);
  }
  pool_->Unpin(page, true);
}

// ---------------------------------------------------------------------------
// Insert

bool BPlusTree::InsertRec(PageId pid, int64_t key, Slice payload,
                          Status* status, int64_t* sep, PageId* new_page) {
  Node node = LoadNode(pid);
  if (node.is_leaf) {
    auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
    size_t pos = it - node.keys.begin();
    if (it != node.keys.end() && *it == key) {
      *status = Status::AlreadyExists("key " + std::to_string(key));
      return false;
    }
    node.keys.insert(it, key);
    node.payloads.insert(node.payloads.begin() + pos, payload.ToBytes());
    *status = Status::OK();
    if (node.keys.size() <= leaf_cap_) {
      StoreNode(node);
      return false;
    }
    // Split: move upper half to a fresh right sibling.
    Node right;
    right.id = AllocNode();
    right.is_leaf = true;
    size_t mid = node.keys.size() / 2;
    right.keys.assign(node.keys.begin() + mid, node.keys.end());
    right.payloads.assign(node.payloads.begin() + mid, node.payloads.end());
    node.keys.resize(mid);
    node.payloads.resize(mid);
    right.next = node.next;
    right.prev = node.id;
    node.next = right.id;
    if (right.next != kInvalidPageId) {
      Node after = LoadNode(right.next);
      after.prev = right.id;
      StoreNode(after);
    }
    StoreNode(node);
    StoreNode(right);
    *sep = right.keys.front();
    *new_page = right.id;
    return true;
  }
  // Internal node.
  size_t idx =
      std::upper_bound(node.keys.begin(), node.keys.end(), key) -
      node.keys.begin();
  int64_t child_sep;
  PageId child_new;
  if (!InsertRec(node.children[idx], key, payload, status, &child_sep,
                 &child_new)) {
    return false;
  }
  node.keys.insert(node.keys.begin() + idx, child_sep);
  node.children.insert(node.children.begin() + idx + 1, child_new);
  if (node.keys.size() <= internal_cap_) {
    StoreNode(node);
    return false;
  }
  // Split internal: promote the middle key.
  Node right;
  right.id = AllocNode();
  right.is_leaf = false;
  size_t mid = node.keys.size() / 2;
  *sep = node.keys[mid];
  right.keys.assign(node.keys.begin() + mid + 1, node.keys.end());
  right.children.assign(node.children.begin() + mid + 1, node.children.end());
  node.keys.resize(mid);
  node.children.resize(mid + 1);
  StoreNode(node);
  StoreNode(right);
  *new_page = right.id;
  return true;
}

Status BPlusTree::Insert(int64_t key, Slice payload) {
  if (payload.size() != payload_size_)
    return Status::InvalidArgument("payload size mismatch");
  Status status;
  int64_t sep;
  PageId new_page;
  if (InsertRec(root_, key, payload, &status, &sep, &new_page)) {
    Node new_root;
    new_root.id = AllocNode();
    new_root.is_leaf = false;
    new_root.keys = {sep};
    new_root.children = {root_, new_page};
    StoreNode(new_root);
    root_ = new_root.id;
    ++height_;
  }
  if (status.ok()) {
    ++num_entries_;
    StoreMeta();
  }
  return status;
}

Status BPlusTree::Update(int64_t key, Slice payload) {
  if (payload.size() != payload_size_)
    return Status::InvalidArgument("payload size mismatch");
  Node leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key);
  if (it == leaf.keys.end() || *it != key)
    return Status::NotFound("key " + std::to_string(key));
  leaf.payloads[it - leaf.keys.begin()] = payload.ToBytes();
  StoreNode(leaf);
  return Status::OK();
}

Status BPlusTree::Upsert(int64_t key, Slice payload) {
  Status s = Update(key, payload);
  if (s.IsNotFound()) return Insert(key, payload);
  return s;
}

// ---------------------------------------------------------------------------
// Delete

void BPlusTree::RebalanceChild(Node* parent, size_t child_idx) {
  Node child = LoadNode(parent->children[child_idx]);
  size_t min_keys = (child.is_leaf ? leaf_cap_ : internal_cap_) / 2;

  // Try borrowing from the left sibling.
  if (child_idx > 0) {
    Node left = LoadNode(parent->children[child_idx - 1]);
    if (left.keys.size() > min_keys) {
      if (child.is_leaf) {
        child.keys.insert(child.keys.begin(), left.keys.back());
        child.payloads.insert(child.payloads.begin(),
                              std::move(left.payloads.back()));
        left.keys.pop_back();
        left.payloads.pop_back();
        parent->keys[child_idx - 1] = child.keys.front();
      } else {
        child.keys.insert(child.keys.begin(), parent->keys[child_idx - 1]);
        parent->keys[child_idx - 1] = left.keys.back();
        left.keys.pop_back();
        child.children.insert(child.children.begin(), left.children.back());
        left.children.pop_back();
      }
      StoreNode(left);
      StoreNode(child);
      return;
    }
  }
  // Try borrowing from the right sibling.
  if (child_idx + 1 < parent->children.size()) {
    Node right = LoadNode(parent->children[child_idx + 1]);
    if (right.keys.size() > min_keys) {
      if (child.is_leaf) {
        child.keys.push_back(right.keys.front());
        child.payloads.push_back(std::move(right.payloads.front()));
        right.keys.erase(right.keys.begin());
        right.payloads.erase(right.payloads.begin());
        parent->keys[child_idx] = right.keys.front();
      } else {
        child.keys.push_back(parent->keys[child_idx]);
        parent->keys[child_idx] = right.keys.front();
        right.keys.erase(right.keys.begin());
        child.children.push_back(right.children.front());
        right.children.erase(right.children.begin());
      }
      StoreNode(right);
      StoreNode(child);
      return;
    }
  }
  // Merge. Note: merged-away pages are not recycled (no free list); the
  // paper's workloads are update-heavy rather than shrink-heavy.
  if (child_idx > 0) {
    // Merge child into its left sibling.
    Node left = LoadNode(parent->children[child_idx - 1]);
    if (child.is_leaf) {
      left.keys.insert(left.keys.end(), child.keys.begin(), child.keys.end());
      for (auto& p : child.payloads) left.payloads.push_back(std::move(p));
      left.next = child.next;
      if (child.next != kInvalidPageId) {
        Node after = LoadNode(child.next);
        after.prev = left.id;
        StoreNode(after);
      }
    } else {
      left.keys.push_back(parent->keys[child_idx - 1]);
      left.keys.insert(left.keys.end(), child.keys.begin(), child.keys.end());
      left.children.insert(left.children.end(), child.children.begin(),
                           child.children.end());
    }
    parent->keys.erase(parent->keys.begin() + child_idx - 1);
    parent->children.erase(parent->children.begin() + child_idx);
    StoreNode(left);
  } else {
    // Merge the right sibling into child.
    Node right = LoadNode(parent->children[child_idx + 1]);
    if (child.is_leaf) {
      child.keys.insert(child.keys.end(), right.keys.begin(),
                        right.keys.end());
      for (auto& p : right.payloads) child.payloads.push_back(std::move(p));
      child.next = right.next;
      if (right.next != kInvalidPageId) {
        Node after = LoadNode(right.next);
        after.prev = child.id;
        StoreNode(after);
      }
    } else {
      child.keys.push_back(parent->keys[child_idx]);
      child.keys.insert(child.keys.end(), right.keys.begin(),
                        right.keys.end());
      child.children.insert(child.children.end(), right.children.begin(),
                            right.children.end());
    }
    parent->keys.erase(parent->keys.begin() + child_idx);
    parent->children.erase(parent->children.begin() + child_idx + 1);
    StoreNode(child);
  }
}

bool BPlusTree::DeleteRec(PageId pid, int64_t key, Status* status) {
  Node node = LoadNode(pid);
  if (node.is_leaf) {
    auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
    if (it == node.keys.end() || *it != key) {
      *status = Status::NotFound("key " + std::to_string(key));
      return false;
    }
    size_t pos = it - node.keys.begin();
    node.keys.erase(it);
    node.payloads.erase(node.payloads.begin() + pos);
    StoreNode(node);
    *status = Status::OK();
    return node.keys.size() < leaf_cap_ / 2;
  }
  size_t idx =
      std::upper_bound(node.keys.begin(), node.keys.end(), key) -
      node.keys.begin();
  bool child_underflow = DeleteRec(node.children[idx], key, status);
  if (!status->ok()) return false;
  if (child_underflow) {
    RebalanceChild(&node, idx);
    StoreNode(node);
  }
  return node.keys.size() < internal_cap_ / 2;
}

Status BPlusTree::Delete(int64_t key) {
  Status status;
  DeleteRec(root_, key, &status);
  if (!status.ok()) return status;
  // Shrink the root if it became a trivial internal node.
  Node root = LoadNode(root_);
  if (!root.is_leaf && root.keys.empty()) {
    root_ = root.children[0];
    --height_;
  }
  --num_entries_;
  StoreMeta();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Lookups

BPlusTree::Node BPlusTree::FindLeaf(int64_t key) const {
  Node node = LoadNode(root_);
  while (!node.is_leaf) {
    size_t idx =
        std::upper_bound(node.keys.begin(), node.keys.end(), key) -
        node.keys.begin();
    node = LoadNode(node.children[idx]);
  }
  return node;
}

Result<std::vector<uint8_t>> BPlusTree::Get(int64_t key) const {
  Node leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key);
  if (it == leaf.keys.end() || *it != key)
    return Status::NotFound("key " + std::to_string(key));
  return leaf.payloads[it - leaf.keys.begin()];
}

bool BPlusTree::Contains(int64_t key) const {
  Node leaf = FindLeaf(key);
  return std::binary_search(leaf.keys.begin(), leaf.keys.end(), key);
}

BPlusTree::ScanResult BPlusTree::Scan(int64_t lo, int64_t hi) const {
  ScanResult out;
  Node leaf = FindLeaf(lo);
  size_t pos =
      std::lower_bound(leaf.keys.begin(), leaf.keys.end(), lo) -
      leaf.keys.begin();
  // Left boundary: the entry immediately before (leaf, pos).
  if (pos > 0) {
    out.left_boundary = Entry{leaf.keys[pos - 1], leaf.payloads[pos - 1]};
  } else if (leaf.prev != kInvalidPageId) {
    Node prev = LoadNode(leaf.prev);
    if (!prev.keys.empty())
      out.left_boundary = Entry{prev.keys.back(), prev.payloads.back()};
  }
  // Walk forward collecting [lo, hi]; the first key beyond hi is the right
  // boundary.
  while (true) {
    if (pos >= leaf.keys.size()) {
      if (leaf.next == kInvalidPageId) break;
      leaf = LoadNode(leaf.next);
      pos = 0;
      continue;
    }
    if (leaf.keys[pos] > hi) {
      out.right_boundary = Entry{leaf.keys[pos], leaf.payloads[pos]};
      break;
    }
    out.entries.push_back(Entry{leaf.keys[pos], leaf.payloads[pos]});
    ++pos;
  }
  return out;
}

std::vector<BPlusTree::Entry> BPlusTree::ScanAll() const {
  std::vector<Entry> out;
  out.reserve(num_entries_);
  Node node = LoadNode(root_);
  while (!node.is_leaf) node = LoadNode(node.children.front());
  while (true) {
    for (size_t i = 0; i < node.keys.size(); ++i)
      out.push_back(Entry{node.keys[i], node.payloads[i]});
    if (node.next == kInvalidPageId) break;
    node = LoadNode(node.next);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Invariants

void BPlusTree::CheckInvariants() const {
  struct Frame {
    PageId pid;
    uint32_t depth;
    int64_t lo;
    int64_t hi;
    bool has_lo, has_hi;
  };
  std::vector<Frame> stack = {
      {root_, 1, 0, 0, false, false}};
  uint64_t leaf_entries = 0;
  uint32_t leaf_depth = 0;
  PageId first_leaf = kInvalidPageId;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    Node node = LoadNode(f.pid);
    AUTHDB_CHECK(std::is_sorted(node.keys.begin(), node.keys.end()));
    for (size_t i = 0; i + 1 < node.keys.size(); ++i)
      AUTHDB_CHECK(node.keys[i] != node.keys[i + 1]);
    if (f.has_lo && !node.keys.empty()) AUTHDB_CHECK(node.keys.front() >= f.lo);
    if (f.has_hi && !node.keys.empty()) AUTHDB_CHECK(node.keys.back() < f.hi);
    if (node.is_leaf) {
      if (leaf_depth == 0) leaf_depth = f.depth;
      AUTHDB_CHECK(leaf_depth == f.depth);  // all leaves at same depth
      AUTHDB_CHECK(f.depth == height_);
      leaf_entries += node.keys.size();
      if (node.prev == kInvalidPageId) first_leaf = node.id;
      if (f.pid != root_) AUTHDB_CHECK(node.keys.size() >= leaf_cap_ / 2);
    } else {
      AUTHDB_CHECK(node.children.size() == node.keys.size() + 1);
      if (f.pid != root_) {
        AUTHDB_CHECK(node.keys.size() >= internal_cap_ / 2);
      } else {
        AUTHDB_CHECK(!node.keys.empty());
      }
      for (size_t i = 0; i < node.children.size(); ++i) {
        Frame cf;
        cf.pid = node.children[i];
        cf.depth = f.depth + 1;
        cf.has_lo = i > 0 || f.has_lo;
        cf.lo = i > 0 ? node.keys[i - 1] : f.lo;
        cf.has_hi = i < node.keys.size() || f.has_hi;
        cf.hi = i < node.keys.size() ? node.keys[i] : f.hi;
        stack.push_back(cf);
      }
    }
  }
  AUTHDB_CHECK(leaf_entries == num_entries_);
  // Leaf chain covers all entries in sorted order.
  if (first_leaf != kInvalidPageId) {
    uint64_t chained = 0;
    int64_t prev_key = 0;
    bool have_prev = false;
    Node node = LoadNode(first_leaf);
    while (true) {
      for (int64_t k : node.keys) {
        if (have_prev) AUTHDB_CHECK(prev_key < k);
        prev_key = k;
        have_prev = true;
        ++chained;
      }
      if (node.next == kInvalidPageId) break;
      PageId prev_id = node.id;
      node = LoadNode(node.next);
      AUTHDB_CHECK(node.prev == prev_id);
    }
    AUTHDB_CHECK(chained == num_entries_);
  }
}

}  // namespace authdb
