#include "index/merkle.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace authdb {

namespace {
size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

MerkleTree::MerkleTree(std::vector<Digest160> leaves) {
  n_leaves_ = leaves.size();
  cap_ = NextPow2(std::max<size_t>(1, n_leaves_));
  nodes_.assign(2 * cap_, Digest160{});
  for (size_t i = 0; i < n_leaves_; ++i) nodes_[cap_ + i] = leaves[i];
  Rebuild();
}

void MerkleTree::Rebuild() {
  for (size_t i = cap_ - 1; i >= 1; --i)
    nodes_[i] = Sha1::HashPair(nodes_[2 * i], nodes_[2 * i + 1]);
}

const Digest160& MerkleTree::root() const { return nodes_[1]; }

const Digest160& MerkleTree::leaf(size_t i) const {
  AUTHDB_CHECK(i < n_leaves_);
  return nodes_[cap_ + i];
}

size_t MerkleTree::UpdateLeaf(size_t i, const Digest160& d) {
  AUTHDB_CHECK(i < n_leaves_);
  size_t node = cap_ + i;
  nodes_[node] = d;
  size_t recomputed = 0;
  for (node /= 2; node >= 1; node /= 2) {
    nodes_[node] = Sha1::HashPair(nodes_[2 * node], nodes_[2 * node + 1]);
    ++recomputed;
  }
  return recomputed;
}

std::vector<Digest160> MerkleTree::RangeProof(size_t lo, size_t hi) const {
  AUTHDB_CHECK(lo <= hi && hi < n_leaves_);
  std::vector<Digest160> proof;
  // Iterative stack mirrors VerifyRange's recursion order exactly.
  struct Frame {
    size_t node, span_lo, span_hi;  // span is [span_lo, span_hi)
  };
  std::vector<Frame> stack = {{1, 0, cap_}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.span_hi <= lo || f.span_lo > hi) {
      proof.push_back(nodes_[f.node]);
      continue;
    }
    if (lo <= f.span_lo && f.span_hi <= hi + 1) continue;  // inside range
    size_t mid = (f.span_lo + f.span_hi) / 2;
    // Push right first so the left child is processed first (stack order),
    // matching the verifier's left-to-right recursion.
    stack.push_back({2 * f.node + 1, mid, f.span_hi});
    stack.push_back({2 * f.node, f.span_lo, mid});
  }
  return proof;
}

size_t MerkleTree::RangeProofSize(size_t lo, size_t hi) const {
  return RangeProof(lo, hi).size();
}

namespace {
struct VerifyCtx {
  size_t lo, hi;
  const std::vector<Digest160>* leaves;
  const std::vector<Digest160>* proof;
  size_t proof_pos = 0;
  bool failed = false;
};

Digest160 Reconstruct(VerifyCtx* ctx, size_t span_lo, size_t span_hi) {
  if (ctx->failed) return Digest160{};
  if (span_hi <= ctx->lo || span_lo > ctx->hi) {
    if (ctx->proof_pos >= ctx->proof->size()) {
      ctx->failed = true;
      return Digest160{};
    }
    return (*ctx->proof)[ctx->proof_pos++];
  }
  if (span_hi - span_lo == 1) {
    // A single leaf inside the queried range.
    size_t idx = span_lo - ctx->lo;
    if (idx >= ctx->leaves->size()) {
      ctx->failed = true;
      return Digest160{};
    }
    return (*ctx->leaves)[idx];
  }
  size_t mid = (span_lo + span_hi) / 2;
  Digest160 l = Reconstruct(ctx, span_lo, mid);
  Digest160 r = Reconstruct(ctx, mid, span_hi);
  return Sha1::HashPair(l, r);
}
}  // namespace

bool MerkleTree::VerifyRange(const Digest160& root, size_t n_leaves,
                             size_t lo,
                             const std::vector<Digest160>& range_leaves,
                             const std::vector<Digest160>& proof) {
  if (range_leaves.empty()) return false;
  size_t hi = lo + range_leaves.size() - 1;
  if (hi >= n_leaves) return false;
  size_t cap = NextPow2(std::max<size_t>(1, n_leaves));
  VerifyCtx ctx;
  ctx.lo = lo;
  ctx.hi = hi;
  ctx.leaves = &range_leaves;
  ctx.proof = &proof;
  Digest160 computed = Reconstruct(&ctx, 0, cap);
  if (ctx.failed || ctx.proof_pos != proof.size()) return false;
  return computed == root;
}

}  // namespace authdb
