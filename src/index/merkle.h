#ifndef AUTHDB_INDEX_MERKLE_H_
#define AUTHDB_INDEX_MERKLE_H_

#include <cstdint>
#include <vector>

#include "crypto/sha.h"

namespace authdb {

/// In-memory Merkle hash tree (Merkle, Crypto'89; Figure 1 of the paper).
/// Leaves are message digests; each internal node is h(left | right).
/// Capacity is padded to a power of two with all-zero digests.
///
/// Supports O(log n) leaf updates (the EMB baseline's per-update digest
/// propagation) and contiguous-range membership proofs (the EMB range VO).
class MerkleTree {
 public:
  explicit MerkleTree(std::vector<Digest160> leaves);

  const Digest160& root() const;
  size_t leaf_count() const { return n_leaves_; }
  const Digest160& leaf(size_t i) const;

  /// Replace leaf i and recompute the path to the root. Returns the number
  /// of digest recomputations (= tree height), the cost the paper charges
  /// each MHT update with.
  size_t UpdateLeaf(size_t i, const Digest160& d);

  /// Proof that leaves [lo, hi] (inclusive) are the exact contents of those
  /// positions: the digests of all maximal subtrees disjoint from the range,
  /// emitted in deterministic recursion order.
  std::vector<Digest160> RangeProof(size_t lo, size_t hi) const;

  /// Reconstruct the root from claimed range leaves + proof and compare.
  static bool VerifyRange(const Digest160& root, size_t n_leaves, size_t lo,
                          const std::vector<Digest160>& range_leaves,
                          const std::vector<Digest160>& proof);

  /// Number of digests RangeProof would emit (VO-size accounting).
  size_t RangeProofSize(size_t lo, size_t hi) const;

 private:
  void Rebuild();
  size_t cap_ = 1;       // padded leaf capacity (power of two)
  size_t n_leaves_ = 0;  // real leaves
  // Heap layout: nodes_[1] = root; children of i are 2i, 2i+1; leaves start
  // at cap_.
  std::vector<Digest160> nodes_;
};

}  // namespace authdb

#endif  // AUTHDB_INDEX_MERKLE_H_
