#ifndef AUTHDB_INDEX_EMB_TREE_H_
#define AUTHDB_INDEX_EMB_TREE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "core/record.h"
#include "crypto/rsa.h"
#include "index/btree.h"
#include "index/merkle.h"
#include "storage/record_file.h"

namespace authdb {

/// The EMB-tree baseline (Li et al., SIGMOD'06) — the representative
/// Merkle-hash-tree scheme for disk-resident data that the paper compares
/// against (Sections 2.2, 3.2, 5.3).
///
/// Composition: a disk-based B+-tree indexes <key, digest, rid>; the
/// physical records live in a RecordFile; a Merkle hash tree over the
/// records in key order carries the authentication digests, and the data
/// aggregator signs the MHT root. Every record update propagates digests
/// from the leaf to the root and forces a root re-signature — the
/// concurrency bottleneck the paper's scheme removes (each update must hold
/// the root in exclusive mode).
///
/// The digest layer is maintained in memory while the B+-tree and record
/// file are disk-backed; the per-update digest-recomputation count and
/// B+-tree I/Os are exposed for the calibrated simulator.
class EmbTree {
 public:
  /// `data_pool` backs the record file, `index_pool` the B+-tree. The
  /// signing key belongs to the data aggregator.
  EmbTree(BufferPool* data_pool, BufferPool* index_pool,
          const RsaPrivateKey* da_key, uint32_t record_len = 512);

  /// Load records (sorted by key, unique keys) and sign the root.
  Status BulkLoad(const std::vector<Record>& sorted_records);

  /// Replace the record with the same indexed key. Recomputes the digest
  /// path and re-signs the root.
  Status UpdateRecord(const Record& rec);
  /// Insert a new record (O(N) Merkle rebuild: position shifts).
  Status InsertRecord(const Record& rec);
  /// Delete by key (O(N) Merkle rebuild).
  Status DeleteRecord(int64_t key);

  /// Verification object for a range answer: boundary records, the Merkle
  /// range proof, and the signed root.
  struct RangeVO {
    std::optional<Record> left_boundary, right_boundary;
    uint64_t n_leaves = 0;
    uint64_t lo_pos = 0;  // Merkle position of the first proven leaf
    std::vector<Digest160> proof;
    RsaSignature root_sig;
  };
  struct RangeAnswer {
    std::vector<Record> records;
    RangeVO vo;
  };

  Result<RangeAnswer> RangeQuery(int64_t lo, int64_t hi) const;

  /// Client-side check: authenticity (digests chain to the signed root) and
  /// completeness (boundaries enclose the range; positions contiguous).
  static Status VerifyRange(const RsaPublicKey& da_pub, int64_t lo,
                            int64_t hi, const RangeAnswer& ans);

  /// VO size in bytes under the paper's size constants (one digest = 20 B,
  /// one RSA signature = 128 B, boundary records at record wire size).
  static size_t VoSizeBytes(const RangeVO& vo);

  uint64_t size() const { return keys_.size(); }
  uint32_t index_height() const { return index_.height(); }
  /// Digest recomputations performed by the last update (leaf-to-root path).
  size_t last_update_digest_ops() const { return last_digest_ops_; }
  uint64_t root_signatures() const { return root_signatures_; }

 private:
  Status SignRoot();
  ByteBuffer RootMessage() const;
  Result<Record> FetchByPos(size_t pos) const;
  /// Rebuild merkle_ + position maps from scratch (insert/delete path).
  void RebuildMerkle();

  RecordFile records_;
  BPlusTree index_;  // key -> digest(20) | rid(8)
  const RsaPrivateKey* da_key_;
  // In-memory key order: keys_[pos] is the key of Merkle leaf pos.
  std::vector<int64_t> keys_;
  std::vector<RecordId> rids_;
  std::optional<MerkleTree> merkle_;
  RsaSignature root_sig_;
  size_t last_digest_ops_ = 0;
  uint64_t root_signatures_ = 0;
};

}  // namespace authdb

#endif  // AUTHDB_INDEX_EMB_TREE_H_
