#include "index/emb_tree.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace authdb {

namespace {
constexpr uint32_t kIndexPayload = 28;  // digest(20) | rid(8)

std::vector<uint8_t> IndexPayload(const Digest160& d, RecordId rid) {
  std::vector<uint8_t> out(kIndexPayload);
  std::copy(d.bytes.begin(), d.bytes.end(), out.begin());
  for (int i = 0; i < 8; ++i) out[20 + i] = rid >> (8 * i);
  return out;
}
}  // namespace

EmbTree::EmbTree(BufferPool* data_pool, BufferPool* index_pool,
                 const RsaPrivateKey* da_key, uint32_t record_len)
    : records_(data_pool, record_len),
      index_(index_pool, kIndexPayload),
      da_key_(da_key) {}

ByteBuffer EmbTree::RootMessage() const {
  ByteBuffer buf;
  buf.PutString("emb-root");
  buf.PutBytes(merkle_->root().AsSlice());
  buf.PutU64(merkle_->leaf_count());
  return buf;
}

Status EmbTree::SignRoot() {
  root_sig_ = da_key_->Sign(RootMessage().AsSlice());
  ++root_signatures_;
  return Status::OK();
}

Status EmbTree::BulkLoad(const std::vector<Record>& sorted_records) {
  AUTHDB_CHECK(keys_.empty());
  std::vector<Digest160> leaves;
  leaves.reserve(sorted_records.size());
  for (const Record& rec : sorted_records) {
    if (!keys_.empty() && rec.key() <= keys_.back())
      return Status::InvalidArgument("records not sorted by unique key");
    AUTHDB_ASSIGN_OR_RETURN(RecordId rid,
                            records_.Insert(Slice(rec.Serialize(
                                records_.record_len()))));
    AUTHDB_RETURN_NOT_OK(
        index_.Insert(rec.key(), Slice(IndexPayload(rec.Digest(), rid))));
    keys_.push_back(rec.key());
    rids_.push_back(rid);
    leaves.push_back(rec.Digest());
  }
  merkle_.emplace(std::move(leaves));
  return SignRoot();
}

void EmbTree::RebuildMerkle() {
  std::vector<Digest160> leaves;
  leaves.reserve(rids_.size());
  for (RecordId rid : rids_) {
    auto rec = records_.Read(rid);
    AUTHDB_CHECK(rec.ok());
    leaves.push_back(Record::Deserialize(Slice(rec.value())).Digest());
  }
  merkle_.emplace(std::move(leaves));
}

Status EmbTree::UpdateRecord(const Record& rec) {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), rec.key());
  if (it == keys_.end() || *it != rec.key())
    return Status::NotFound("key " + std::to_string(rec.key()));
  size_t pos = it - keys_.begin();
  RecordId rid = rids_[pos];
  AUTHDB_RETURN_NOT_OK(
      records_.Update(rid, Slice(rec.Serialize(records_.record_len()))));
  AUTHDB_RETURN_NOT_OK(
      index_.Update(rec.key(), Slice(IndexPayload(rec.Digest(), rid))));
  last_digest_ops_ = merkle_->UpdateLeaf(pos, rec.Digest());
  return SignRoot();
}

Status EmbTree::InsertRecord(const Record& rec) {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), rec.key());
  if (it != keys_.end() && *it == rec.key())
    return Status::AlreadyExists("key " + std::to_string(rec.key()));
  AUTHDB_ASSIGN_OR_RETURN(
      RecordId rid,
      records_.Insert(Slice(rec.Serialize(records_.record_len()))));
  AUTHDB_RETURN_NOT_OK(
      index_.Insert(rec.key(), Slice(IndexPayload(rec.Digest(), rid))));
  size_t pos = it - keys_.begin();
  keys_.insert(it, rec.key());
  rids_.insert(rids_.begin() + pos, rid);
  RebuildMerkle();
  return SignRoot();
}

Status EmbTree::DeleteRecord(int64_t key) {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key)
    return Status::NotFound("key " + std::to_string(key));
  size_t pos = it - keys_.begin();
  AUTHDB_RETURN_NOT_OK(records_.Delete(rids_[pos]));
  AUTHDB_RETURN_NOT_OK(index_.Delete(key));
  keys_.erase(it);
  rids_.erase(rids_.begin() + pos);
  RebuildMerkle();
  return SignRoot();
}

Result<Record> EmbTree::FetchByPos(size_t pos) const {
  AUTHDB_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                          records_.Read(rids_[pos]));
  return Record::Deserialize(Slice(bytes));
}

Result<EmbTree::RangeAnswer> EmbTree::RangeQuery(int64_t lo,
                                                 int64_t hi) const {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  if (keys_.empty()) return Status::NotFound("empty relation");
  RangeAnswer ans;
  // Index descent (charges the B+-tree I/Os); the Merkle positions come
  // from the in-memory key order.
  size_t first = std::lower_bound(keys_.begin(), keys_.end(), lo) -
                 keys_.begin();
  size_t last_excl = std::upper_bound(keys_.begin(), keys_.end(), hi) -
                     keys_.begin();
  // Boundary records p- and p+ (Section 2.2).
  size_t proof_lo = first, proof_hi_excl = last_excl;
  if (first > 0) {
    AUTHDB_ASSIGN_OR_RETURN(Record b, FetchByPos(first - 1));
    ans.vo.left_boundary = b;
    proof_lo = first - 1;
  }
  if (last_excl < keys_.size()) {
    AUTHDB_ASSIGN_OR_RETURN(Record b, FetchByPos(last_excl));
    ans.vo.right_boundary = b;
    proof_hi_excl = last_excl + 1;
  }
  for (size_t pos = first; pos < last_excl; ++pos) {
    AUTHDB_ASSIGN_OR_RETURN(Record r, FetchByPos(pos));
    // Touch the index as a real server would to locate each page.
    ans.records.push_back(std::move(r));
  }
  ans.vo.n_leaves = merkle_->leaf_count();
  ans.vo.lo_pos = proof_lo;
  ans.vo.proof = merkle_->RangeProof(proof_lo, proof_hi_excl - 1);
  ans.vo.root_sig = root_sig_;
  return ans;
}

Status EmbTree::VerifyRange(const RsaPublicKey& da_pub, int64_t lo,
                            int64_t hi, const RangeAnswer& ans) {
  const RangeVO& vo = ans.vo;
  // 1. Result records must all fall inside [lo, hi], sorted by key.
  for (size_t i = 0; i < ans.records.size(); ++i) {
    int64_t k = ans.records[i].key();
    if (k < lo || k > hi)
      return Status::VerificationFailed("result record outside range");
    if (i > 0 && ans.records[i - 1].key() >= k)
      return Status::VerificationFailed("result records not sorted");
  }
  // 2. Boundaries must enclose the range; absent boundaries are only legal
  //    at the domain edges (checked positionally below).
  if (vo.left_boundary && vo.left_boundary->key() >= lo)
    return Status::VerificationFailed("left boundary inside range");
  if (vo.right_boundary && vo.right_boundary->key() <= hi)
    return Status::VerificationFailed("right boundary inside range");
  if (!vo.left_boundary && vo.lo_pos != 0)
    return Status::VerificationFailed("missing left boundary");
  // 3. Recompute leaf digests in order.
  std::vector<Digest160> leaves;
  if (vo.left_boundary) leaves.push_back(vo.left_boundary->Digest());
  for (const Record& r : ans.records) leaves.push_back(r.Digest());
  if (vo.right_boundary) leaves.push_back(vo.right_boundary->Digest());
  if (leaves.empty()) return Status::VerificationFailed("empty proof");
  if (!vo.right_boundary &&
      vo.lo_pos + leaves.size() != vo.n_leaves)
    return Status::VerificationFailed("missing right boundary");
  // 4. Reconstruct the MHT root from the leaves + proof, then check the
  //    owner signature over h("emb-root" | root | n_leaves).
  Digest160 computed;
  {
    struct Ctx {
      size_t lo, hi, pos = 0;
      const std::vector<Digest160>* leaves;
      const std::vector<Digest160>* proof;
      bool failed = false;
    } ctx;
    ctx.lo = vo.lo_pos;
    ctx.hi = vo.lo_pos + leaves.size() - 1;
    ctx.leaves = &leaves;
    ctx.proof = &vo.proof;
    size_t cap = 1;
    while (cap < std::max<uint64_t>(1, vo.n_leaves)) cap <<= 1;
    if (ctx.hi >= vo.n_leaves)
      return Status::VerificationFailed("range exceeds relation");
    std::function<Digest160(size_t, size_t)> rec =
        [&](size_t span_lo, size_t span_hi) -> Digest160 {
      if (span_hi <= ctx.lo || span_lo > ctx.hi) {
        if (ctx.pos >= ctx.proof->size()) {
          ctx.failed = true;
          return Digest160{};
        }
        return (*ctx.proof)[ctx.pos++];
      }
      if (span_hi - span_lo == 1) return (*ctx.leaves)[span_lo - ctx.lo];
      size_t mid = (span_lo + span_hi) / 2;
      Digest160 l = rec(span_lo, mid);
      Digest160 r = rec(mid, span_hi);
      return Sha1::HashPair(l, r);
    };
    computed = rec(0, cap);
    if (ctx.failed || ctx.pos != vo.proof.size())
      return Status::VerificationFailed("malformed Merkle proof");
  }
  ByteBuffer msg;
  msg.PutString("emb-root");
  msg.PutBytes(computed.AsSlice());
  msg.PutU64(vo.n_leaves);
  if (!da_pub.Verify(msg.AsSlice(), vo.root_sig))
    return Status::VerificationFailed("root signature mismatch");
  return Status::OK();
}

size_t EmbTree::VoSizeBytes(const RangeVO& vo) {
  size_t bytes = vo.proof.size() * 20;  // digests
  bytes += 128;                         // RSA-1024 root signature
  if (vo.left_boundary) bytes += vo.left_boundary->WireSize();
  if (vo.right_boundary) bytes += vo.right_boundary->WireSize();
  bytes += 16;  // n_leaves + lo_pos
  return bytes;
}

}  // namespace authdb
