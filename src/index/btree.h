#ifndef AUTHDB_INDEX_BTREE_H_
#define AUTHDB_INDEX_BTREE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace authdb {

/// Disk-based B+-tree with int64 keys and fixed-size opaque payloads.
///
/// This is the index substrate of the paper's Section 3.2 (Figure 2): the
/// ASign index stores <key, signature, rid> in its leaves (payload = 24
/// bytes), while the EMB-tree baseline wraps this layout with embedded
/// digests. Keys are unique; leaves are doubly linked so range queries can
/// produce the left/right *boundary records* that completeness proofs
/// require.
///
/// Page 0 of the underlying file holds the tree metadata; an existing file
/// is reopened (payload size must match).
class BPlusTree {
 public:
  BPlusTree(BufferPool* pool, uint32_t payload_size);

  struct Entry {
    int64_t key;
    std::vector<uint8_t> payload;
  };

  /// Result of a range scan [lo, hi], plus the paper's boundary records:
  /// the record immediately to the left of lo and immediately to the right
  /// of hi in key order (absent at the domain edges).
  struct ScanResult {
    std::optional<Entry> left_boundary;
    std::optional<Entry> right_boundary;
    std::vector<Entry> entries;
  };

  Status Insert(int64_t key, Slice payload);      // kAlreadyExists on dup
  Status Update(int64_t key, Slice payload);      // kNotFound if absent
  Status Upsert(int64_t key, Slice payload);
  Status Delete(int64_t key);                     // kNotFound if absent
  Result<std::vector<uint8_t>> Get(int64_t key) const;
  bool Contains(int64_t key) const;

  /// Inclusive range scan with boundary records.
  ScanResult Scan(int64_t lo, int64_t hi) const;
  /// All entries in key order (used by joins and bulk certification).
  std::vector<Entry> ScanAll() const;

  uint64_t size() const { return num_entries_; }
  uint32_t height() const { return height_; }
  uint32_t payload_size() const { return payload_size_; }
  uint32_t leaf_capacity() const { return leaf_cap_; }
  uint32_t internal_capacity() const { return internal_cap_; }

  /// Structural invariant checker (tests): sorted keys, fanout bounds,
  /// consistent leaf chain, correct height. Dies on violation.
  void CheckInvariants() const;

 private:
  // Decoded node image. Nodes are read/modified/written as whole pages —
  // simple and safe; the buffer pool absorbs the copies.
  struct Node {
    PageId id = kInvalidPageId;
    bool is_leaf = true;
    PageId prev = kInvalidPageId, next = kInvalidPageId;
    std::vector<int64_t> keys;
    std::vector<PageId> children;                  // internal: keys+1
    std::vector<std::vector<uint8_t>> payloads;    // leaf
  };

  Node LoadNode(PageId id) const;
  void StoreNode(const Node& node) const;
  PageId AllocNode() const;
  void LoadMeta();
  void StoreMeta() const;

  // Returns true if the child split; fills sep/new_page.
  bool InsertRec(PageId pid, int64_t key, Slice payload, Status* status,
                 int64_t* sep, PageId* new_page);
  // Returns true if the node underflowed (caller rebalances).
  bool DeleteRec(PageId pid, int64_t key, Status* status);
  void RebalanceChild(Node* parent, size_t child_idx);

  /// Leaf that would contain `key` (first leaf with last key >= key).
  Node FindLeaf(int64_t key) const;

  BufferPool* pool_;
  uint32_t payload_size_;
  uint32_t leaf_cap_, internal_cap_;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 1;       // number of levels (leaf-only tree = 1)
  uint64_t num_entries_ = 0;
};

}  // namespace authdb

#endif  // AUTHDB_INDEX_BTREE_H_
