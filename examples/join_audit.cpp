// Join audit: authenticated equi-join with certified Bloom filters
// (Section 3.5), served through the unified Execute(plan) surface. A
// broker joins its watchlist (R.A values) against the exchange's Holding
// table (S) at an untrusted query server, and verifies both the matches
// *and* the absences — with a proof ~60% smaller than the boundary-value
// baseline.
//
// Build & run:  ./build/examples/join_audit
#include <cstdio>

#include "common/clock.h"
#include "core/data_aggregator.h"
#include "core/query_server.h"
#include "core/verifier.h"
#include "workload/tpce.h"

using namespace authdb;

int main() {
  auto ctx = BasContext::Default();
  SystemClock clock;
  Rng rng(99);

  // The exchange (DA) certifies the Holding table: B values with
  // duplicates, indexed on composite keys.
  DataAggregator::Options opt;
  opt.record_len = 64;
  opt.buffer_pages = 2048;
  DataAggregator da(ctx, &clock, &rng, opt);
  TpceJoinWorkload::Config wcfg;
  wcfg.scale_divisor = 64;  // demo-size: ~14k rows, ~53 distinct values
  TpceJoinWorkload workload(wcfg);
  auto stream = da.BulkLoad(workload.MakeHoldingRows());
  if (!stream.ok()) return 1;
  std::printf("Holding table: %llu rows, %zu distinct B values\n",
              static_cast<unsigned long long>(workload.ns()),
              workload.distinct_b().size());

  // An (untrusted) query server mirrors the certified table and installs
  // the DA's certified partition filters (one Bloom filter per 4-value
  // partition, 8 bits/value) — the join-serving configuration.
  QueryServer::Options qopt;
  qopt.record_len = 64;
  qopt.buffer_pages = 2048;
  QueryServer qs(ctx, qopt);
  for (const auto& msg : stream.value()) qs.ApplyUpdate(msg);
  JoinAuthority authority(ctx, da.private_key(), BasContext::HashMode::kFast);
  auto partitions = authority.BuildPartitions(workload.distinct_b(),
                                              /*values_per_partition=*/4,
                                              /*bits_per_value=*/8.0,
                                              clock.NowMicros());
  std::printf("certified %zu partition filters\n", partitions.size());
  qs.SetJoinPartitions(partitions);

  // Watchlist: half the values match, half do not.
  auto watchlist = workload.MakeSecurityValues(/*alpha=*/0.5, /*n=*/40);

  VarintGapCodec codec;
  ClientVerifier client(&da.public_key(), &codec,
                        BasContext::HashMode::kFast);
  SizeModel sm;

  for (JoinMethod method :
       {JoinMethod::kBoundaryValues, JoinMethod::kBloomFilter}) {
    Query plan = Query::Join(watchlist, method);
    auto ans = qs.Execute(plan);
    if (!ans.ok()) return 1;
    Status ok = client.VerifyAnswerFresh(plan, ans.value(), clock.NowMicros(),
                                         /*min_epoch=*/0);
    const JoinAnswer& join = ans.value().join;
    size_t s_rows = 0;
    for (const auto& m : join.matches) s_rows += m.s_records.size();
    std::printf(
        "%-16s matches=%zu (S rows %zu) negatives=%zu fallbacks=%zu "
        "VO=%zu bytes -> %s\n",
        method == JoinMethod::kBloomFilter ? "Bloom filter:" : "boundary "
                                                               "values:",
        join.matches.size(), s_rows, join.negative_probes.size(),
        join.absence_proofs.size(), join.vo_size_paper(sm),
        ok.ToString().c_str());
  }

  // Tampering: the server hides one matching row.
  Query plan = Query::Join(watchlist, JoinMethod::kBloomFilter);
  auto ans = qs.Execute(plan);
  auto tampered = ans.value();
  for (auto& m : tampered.join.matches) {
    if (m.s_records.size() > 1) {
      m.s_records.pop_back();
      break;
    }
  }
  Status bad =
      client.VerifyAnswerFresh(plan, tampered, clock.NowMicros(), 0);
  std::printf("hidden join row: %s\n", bad.ToString().c_str());
  return bad.ok() ? 1 : 0;
}
