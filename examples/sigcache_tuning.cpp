// SigCache tuning: plan a signature cache for your workload's query-length
// profile (Algorithm 1), pin it at the query server, and watch the proof
// construction cost drop (Section 4).
//
// Build & run:  ./build/examples/sigcache_tuning
#include <cstdint>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "core/data_aggregator.h"
#include "core/query_server.h"
#include "core/verifier.h"

using namespace authdb;

int main() {
  auto ctx = BasContext::Default();
  SystemClock clock;
  Rng rng(5);

  const uint64_t kN = 4096;
  DataAggregator::Options opt;
  opt.record_len = 128;
  opt.buffer_pages = 1024;
  DataAggregator da(ctx, &clock, &rng, opt);
  std::vector<Record> records;
  for (int64_t k = 0; k < static_cast<int64_t>(kN); ++k) {
    Record r;
    r.attrs = {k, k * 3};
    records.push_back(r);
  }
  QueryServer::Options qopt;
  qopt.record_len = 128;
  qopt.buffer_pages = 1024;
  QueryServer qs(ctx, qopt);
  auto stream = da.BulkLoad(std::move(records));
  for (const auto& msg : stream.value()) qs.ApplyUpdate(msg);

  // 1. Plan against the expected query-cardinality distribution.
  auto dist = CardinalityDist::Harmonic(kN);
  auto plan = SigCachePlanner::Plan(kN, dist, /*max_pairs=*/8);
  std::printf("planned %zu cached nodes; expected additions/query: %.1f -> "
              "%.1f (%.0f%% saved)\n",
              plan.chosen.size(), plan.base_cost,
              plan.cost_after_pairs.back(),
              100 * (plan.base_cost - plan.cost_after_pairs.back()) /
                  plan.base_cost);

  // 2. Pin the plan at the query server (lazy maintenance, the paper's
  //    recommended strategy).
  qs.EnableSigCache(plan.chosen, SigCache::RefreshMode::kLazy);

  // 3. Serve queries; cached aggregates cut the EC additions. Answers stay
  //    byte-for-byte verifiable.
  VarintGapCodec codec;
  ClientVerifier client(&da.public_key(), &codec,
                        BasContext::HashMode::kFast);
  Rng qrng(17);
  size_t adds_cold = 0, adds_warm = 0, n_queries = 50;
  for (size_t round = 0; round < 2; ++round) {
    size_t total = 0;
    Rng local(17);
    for (size_t i = 0; i < n_queries; ++i) {
      uint64_t q = 1 + local.Uniform(kN / 2);
      int64_t lo = static_cast<int64_t>(local.Uniform(kN - q));
      SigCache::AggStats stats;
      auto ans = qs.Select(lo, lo + static_cast<int64_t>(q) - 1, &stats);
      if (!ans.ok()) return 1;
      total += stats.point_adds;
      Status ok = client.VerifySelectionStatic(
          lo, lo + static_cast<int64_t>(q) - 1, ans.value());
      if (!ok.ok()) {
        std::printf("verification failed: %s\n", ok.ToString().c_str());
        return 1;
      }
    }
    (round == 0 ? adds_cold : adds_warm) = total;
  }
  std::printf("EC additions over %zu queries: first pass %zu (fills the "
              "cache), second pass %zu\n",
              n_queries, adds_cold, adds_warm);

  // 4. Updates invalidate lazily; correctness is unaffected.
  auto upd = da.ModifyRecord(2048, {2048, 777});
  qs.ApplyUpdate(upd.value());
  auto ans = qs.Select(2000, 2100);
  Status ok = client.VerifySelectionStatic(2000, 2100, ans.value());
  std::printf("after update through cached interval: %s\n",
              ok.ToString().c_str());
  return ok.ok() ? 0 : 1;
}
