// Stock feed: the paper's motivating scenario (Section 1) — a live trading
// feed where freshness is money. The data aggregator pushes price updates
// continuously and publishes a certified bitmap summary every rho seconds;
// users query through the unified Execute(plan) surface and detect a query
// server that serves yesterday's prices via VerifyAnswerFresh's epoch
// cross-check + bitmap walk.
//
// Build & run:  ./build/examples/stock_feed
#include <cstdint>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "core/data_aggregator.h"
#include "core/query_server.h"
#include "core/verifier.h"

using namespace authdb;

int main() {
  auto ctx = BasContext::Default();
  ManualClock clock(1'000'000);
  Rng rng(7);

  DataAggregator::Options opt;
  opt.record_len = 128;
  opt.rho_micros = 1'000'000;  // one summary per second
  DataAggregator da(ctx, &clock, &rng, opt);

  // 200 ticker symbols.
  std::vector<Record> records;
  for (int64_t sym = 0; sym < 200; ++sym) {
    Record r;
    r.attrs = {sym, /*price_cents=*/10'000 + sym * 13, /*bid*/ 0, /*ask*/ 0};
    records.push_back(r);
  }
  QueryServer::Options qopt;
  qopt.record_len = 128;
  QueryServer honest_qs(ctx, qopt);
  QueryServer lazy_qs(ctx, qopt);  // will silently stop applying updates

  auto stream = da.BulkLoad(std::move(records));
  for (const auto& msg : stream.value()) {
    honest_qs.ApplyUpdate(msg);
    lazy_qs.ApplyUpdate(msg);
  }

  VarintGapCodec codec;
  ClientVerifier client(&da.public_key(), &codec,
                        BasContext::HashMode::kFast);

  // Run five one-second trading periods. The lazy server stops applying
  // updates after period 2 (compromised or stale replica).
  uint64_t epochs_published = 0;
  for (int period = 0; period < 5; ++period) {
    for (int tick = 0; tick < 20; ++tick) {
      clock.AdvanceMicros(50'000);
      int64_t sym = static_cast<int64_t>(rng.Uniform(200));
      auto msg =
          da.ModifyRecord(sym, {sym, 10'000 + static_cast<int64_t>(
                                          rng.Uniform(5000)),
                                0, 0});
      if (!msg.ok()) continue;
      honest_qs.ApplyUpdate(msg.value());
      if (period < 2) lazy_qs.ApplyUpdate(msg.value());
    }
    auto out = da.PublishSummary();
    std::printf("period %d: summary #%llu, %zu bytes compressed, %zu "
                "re-certifications\n",
                period, static_cast<unsigned long long>(out.summary.seq),
                out.summary.compressed_bitmap.size(),
                out.recertifications.size());
    honest_qs.AddSummary(out.summary);
    lazy_qs.AddSummary(out.summary);  // summaries come from the trusted DA
    ++epochs_published;
    for (const auto& rc : out.recertifications) {
      honest_qs.ApplyUpdate(rc);
      if (period < 2) lazy_qs.ApplyUpdate(rc);
    }
  }

  // The user asks both servers for the full board through the one real
  // query surface and verifies with the epoch floor a summary-feed
  // subscriber knows independently.
  uint64_t now = clock.NowMicros();
  Query board = Query::Select(0, 199);
  auto honest = honest_qs.Execute(board);
  Status honest_status = client.VerifyAnswerFresh(board, honest.value(), now,
                                                  epochs_published);
  std::printf("honest server: %zu records -> %s\n",
              honest.value().selection.records.size(),
              honest_status.ToString().c_str());

  ClientVerifier client2(&da.public_key(), &codec,
                         BasContext::HashMode::kFast);
  auto lazy = lazy_qs.Execute(board);
  Status lazy_status =
      client2.VerifyAnswerFresh(board, lazy.value(), now, epochs_published);
  std::printf("lazy server:   %zu records -> %s\n",
              lazy.value().selection.records.size(),
              lazy_status.ToString().c_str());
  std::printf("(stale data detected within the paper's <= 2*rho bound)\n");
  return (honest_status.ok() && !lazy_status.ok()) ? 0 : 1;
}
