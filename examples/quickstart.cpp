// Quickstart: the complete three-party protocol in one file, driven
// through the unified verified-query surface — every read is a Query plan
// handed to Execute(), every answer a QueryAnswer checked by
// ClientVerifier::VerifyAnswerFresh.
//
//   data aggregator (trusted)  --signed records-->  query server (untrusted)
//   user  --query plan-->  query server  --answer + proof-->  user verifies
//
// Build & run:  ./build/examples/quickstart
#include <cstdint>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "core/data_aggregator.h"
#include "core/query_server.h"
#include "core/verifier.h"

using namespace authdb;

int main() {
  // Shared cryptographic domain parameters (256-bit supersingular curve,
  // 160-bit pairing-friendly subgroup).
  auto ctx = BasContext::Default();
  SystemClock clock;
  Rng rng(2024);

  // 1. The data aggregator certifies a small price table.
  DataAggregator::Options opt;
  opt.record_len = 128;
  DataAggregator da(ctx, &clock, &rng, opt);
  std::vector<Record> records;
  for (int64_t id = 0; id < 50; ++id) {
    Record r;
    r.attrs = {id * 10, /*price=*/1000 + id * 7, /*volume=*/500 - id};
    records.push_back(r);
  }
  auto stream = da.BulkLoad(std::move(records));
  if (!stream.ok()) {
    std::printf("bulk load failed: %s\n", stream.status().ToString().c_str());
    return 1;
  }

  // 2. The (untrusted) query server mirrors the certified data.
  QueryServer::Options qopt;
  qopt.record_len = 128;
  QueryServer qs(ctx, qopt);
  for (const auto& msg : stream.value()) qs.ApplyUpdate(msg);
  std::printf("loaded %llu certified records at the query server\n",
              static_cast<unsigned long long>(qs.size()));

  // 3. A user poses a range-selection plan and verifies the answer — the
  // one entry point every plan kind (select / project / join) goes
  // through.
  VarintGapCodec codec;
  ClientVerifier client(&da.public_key(), &codec,
                        BasContext::HashMode::kFast);
  Query plan = Query::Select(100, 200);
  auto answer = qs.Execute(plan);
  if (!answer.ok()) return 1;
  std::printf("query [100, 200]: %zu records, VO = %zu bytes\n",
              answer.value().selection.records.size(),
              answer.value().vo_bytes(SizeModel{}));
  Status ok = client.VerifyAnswerFresh(plan, answer.value(),
                                       clock.NowMicros(), /*min_epoch=*/0);
  std::printf("verification: %s\n", ok.ToString().c_str());

  // 4. A compromised server drops a record — the chain catches it.
  auto tampered = answer.value();
  tampered.selection.records.erase(tampered.selection.records.begin() + 2);
  Status bad = client.VerifyAnswerFresh(plan, tampered, clock.NowMicros(), 0);
  std::printf("tampered answer (record dropped): %s\n",
              bad.ToString().c_str());

  // 5. Updates flow record-at-a-time; no index-wide lock is ever needed.
  auto upd = da.ModifyRecord(150, {150, 9999, 1});
  qs.ApplyUpdate(upd.value());
  Query point = Query::Select(150, 150);
  auto fresh = qs.Execute(point);
  std::printf("after update, price(150) = %lld (verification: %s)\n",
              static_cast<long long>(
                  fresh.value().selection.records[0].attrs[1]),
              client
                  .VerifyAnswerFresh(point, fresh.value(), clock.NowMicros(),
                                     0)
                  .ToString()
                  .c_str());
  return bad.ok() ? 1 : 0;  // tampering MUST have been detected
}
