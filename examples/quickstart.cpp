// Quickstart: the complete three-party protocol in one file.
//
//   data aggregator (trusted)  --signed records-->  query server (untrusted)
//   user  --range query-->  query server  --answer + proof-->  user verifies
//
// Build & run:  ./build/examples/quickstart
#include <cstdint>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "core/data_aggregator.h"
#include "core/query_server.h"
#include "core/verifier.h"

using namespace authdb;

int main() {
  // Shared cryptographic domain parameters (256-bit supersingular curve,
  // 160-bit pairing-friendly subgroup).
  auto ctx = BasContext::Default();
  SystemClock clock;
  Rng rng(2024);

  // 1. The data aggregator certifies a small price table.
  DataAggregator::Options opt;
  opt.record_len = 128;
  DataAggregator da(ctx, &clock, &rng, opt);
  std::vector<Record> records;
  for (int64_t id = 0; id < 50; ++id) {
    Record r;
    r.attrs = {id * 10, /*price=*/1000 + id * 7, /*volume=*/500 - id};
    records.push_back(r);
  }
  auto stream = da.BulkLoad(std::move(records));
  if (!stream.ok()) {
    std::printf("bulk load failed: %s\n", stream.status().ToString().c_str());
    return 1;
  }

  // 2. The (untrusted) query server mirrors the certified data.
  QueryServer::Options qopt;
  qopt.record_len = 128;
  QueryServer qs(ctx, qopt);
  for (const auto& msg : stream.value()) qs.ApplyUpdate(msg);
  std::printf("loaded %llu certified records at the query server\n",
              static_cast<unsigned long long>(qs.size()));

  // 3. A user poses a range query and verifies the answer.
  VarintGapCodec codec;
  ClientVerifier client(&da.public_key(), &codec,
                        BasContext::HashMode::kFast);
  auto answer = qs.Select(100, 200);
  if (!answer.ok()) return 1;
  std::printf("query [100, 200]: %zu records, VO = %zu bytes\n",
              answer.value().records.size(),
              answer.value().vo_size(SizeModel{}));
  Status ok = client.VerifySelection(100, 200, answer.value(),
                                     clock.NowMicros());
  std::printf("verification: %s\n", ok.ToString().c_str());

  // 4. A compromised server drops a record — the chain catches it.
  auto tampered = answer.value();
  tampered.records.erase(tampered.records.begin() + 2);
  Status bad = client.VerifySelection(100, 200, tampered, clock.NowMicros());
  std::printf("tampered answer (record dropped): %s\n",
              bad.ToString().c_str());

  // 5. Updates flow record-at-a-time; no index-wide lock is ever needed.
  auto upd = da.ModifyRecord(150, {150, 9999, 1});
  qs.ApplyUpdate(upd.value());
  auto fresh = qs.Select(150, 150);
  std::printf("after update, price(150) = %lld (verification: %s)\n",
              static_cast<long long>(fresh.value().records[0].attrs[1]),
              client
                  .VerifySelection(150, 150, fresh.value(),
                                   clock.NowMicros())
                  .ToString()
                  .c_str());
  return bad.ok() ? 1 : 0;  // tampering MUST have been detected
}
