// Open-loop overload: what the server does when offered MORE than it can
// serve. Phase 1 measures serving capacity closed-loop (admission off, no
// arrival schedule — load self-throttles). Phase 2 replays a Poisson (and
// then bursty) arrival schedule at 2x that capacity with admission control
// on: selections ride the priority lane, projections/joins the bulk lane,
// and everything the bounded intake queues cannot hold is shed with an
// explicit kShedRetryAfter answer instead of queueing without bound. The
// headline, CI-gated metric is goodput_ratio_at_2x_capacity = served
// throughput under 2x overload / closed-loop capacity (sheds are refusals,
// never goodput). Also demonstrates that the client verifier distinguishes
// an honest shed (ResourceExhausted) from a tampered one (VerificationFailed).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/logging.h"
#include "core/data_aggregator.h"
#include "core/verifier.h"
#include "server/config.h"
#include "server/sharded_query_server.h"
#include "server/update_stream.h"
#include "sim/multi_client.h"
#include "sim/open_loop.h"
#include "workload/generator.h"

namespace authdb {
namespace {

struct Fixture {
  std::shared_ptr<const BasContext> ctx;
  std::unique_ptr<DataAggregator> da;
  std::vector<SignedRecordUpdate> bulk;
  std::vector<Record> rows;
  int64_t key_lo = 0, key_hi = 0;
};

Fixture MakeFixture(bool smoke, SystemClock* clock, Rng* rng) {
  Fixture fx;
  WorkloadGenerator::Config wcfg;
  wcfg.n_records = smoke ? 256 : 1024;  // distinct B values
  wcfg.n_attrs = 4;
  wcfg.join_max_dups = 3;
  wcfg.seed = 7;
  WorkloadGenerator gen(wcfg);
  fx.rows = gen.MakeCompositeRecords();
  fx.key_lo = fx.rows.front().key();
  fx.key_hi = JoinCompositeKey(static_cast<int64_t>(wcfg.n_records) - 1,
                               kJoinMaxDup);

  fx.ctx = BasContext::Default();
  DataAggregator::Options da_opt;
  da_opt.record_len = 128;
  da_opt.piggyback_renewal = false;
  da_opt.sign_attributes = true;
  fx.da = std::make_unique<DataAggregator>(fx.ctx, clock, rng, da_opt);
  auto bulk = fx.da->BulkLoad(fx.rows);
  AUTHDB_CHECK(bulk.ok());
  fx.bulk = std::move(bulk.value());
  fx.da->EnableJoinPartitions(/*values_per_partition=*/8,
                              /*bits_per_value=*/8.0);
  return fx;
}

std::unique_ptr<ShardedQueryServer> MakeServer(const Fixture& fx,
                                               const ServerConfig& cfg) {
  auto server = std::make_unique<ShardedQueryServer>(
      fx.ctx, ShardRouter::Uniform(cfg.serving.worker_threads, 0, fx.key_hi),
      cfg);
  for (const auto& msg : fx.bulk) {
    Status s = server->ApplyUpdate(msg);
    AUTHDB_CHECK(s.ok());
  }
  server->SetJoinPartitions(fx.da->join_partitions());
  return server;
}

void FillMix(OpenLoopOptions* o, const Fixture& fx, size_t n_b_values) {
  o->key_lo = fx.key_lo;
  o->key_hi = fx.key_hi;
  o->query_span = static_cast<uint64_t>(JoinCompositeKey(8, 0));
  o->join_fraction = 0.25;
  o->projection_fraction = 0.25;
  o->join_probe_count = 4;
  o->join_b_lo = 0;
  o->join_b_hi = 2 * static_cast<int64_t>(n_b_values) - 1;
  o->projection_attrs = {1, 2};
}

void Run(bench::BenchRun* run) {
  const bool smoke = run->smoke();
  const size_t shards = 4;
  const size_t n_b_values = smoke ? 256 : 1024;

  bench::Header(
      "Open-loop overload with per-kind admission control",
      "Poisson + burst arrival schedules at 2x measured capacity; selects on "
      "the priority lane, projections/joins on the bulk lane; latency charged "
      "from scheduled arrival (coordinated-omission-free)");

  SystemClock clock;
  Rng rng(13);
  Fixture fx = MakeFixture(smoke, &clock, &rng);

  // ---- Phase 1: closed-loop capacity, admission OFF -----------------------
  // Self-throttling clients with no batching amortization: the sustainable
  // per-plan serving rate that 2x overload is defined against.
  ServerConfig base_cfg;
  base_cfg.node.record_len = 128;
  base_cfg.serving.worker_threads = shards;
  {
    Result<ServerConfig> v = base_cfg.Validated();
    AUTHDB_CHECK(v.ok());
  }
  double capacity_qps = 0;
  {
    auto server = MakeServer(fx, base_cfg);
    DataAggregator::PeriodOutput p0 = fx.da->PublishSummary();
    server->AddSummary(p0.summary);

    MultiClientOptions mopts;
    mopts.clients = 8;
    mopts.ops_per_client = smoke ? 50 : 400;
    mopts.key_lo = fx.key_lo;
    mopts.key_hi = fx.key_hi;
    mopts.query_span = static_cast<uint64_t>(JoinCompositeKey(8, 0));
    mopts.join_fraction = 0.25;
    mopts.projection_fraction = 0.25;
    mopts.join_probe_count = 4;
    mopts.join_b_lo = 0;
    mopts.join_b_hi = 2 * static_cast<int64_t>(n_b_values) - 1;
    mopts.projection_attrs = {1, 2};
    mopts.batch_size = 1;
    mopts.seed = 42;
    MultiClientReport cap = RunMultiClientLoad(server.get(), {}, mopts);
    AUTHDB_CHECK(cap.failures == 0);
    AUTHDB_CHECK(cap.shed == 0);  // admission off: nothing may shed
    capacity_qps = cap.ops_per_second;
    std::printf("\nclosed-loop capacity (admission off): %.0f plans/s\n",
                capacity_qps);
  }
  AUTHDB_CHECK(capacity_qps > 0);
  run->Metric("closed_loop_capacity_qps", capacity_qps);

  // ---- Phase 2: open-loop at 2x capacity, admission ON --------------------
  // Small intake bounds + many dispatchers so overload actually sheds:
  // dispatch_threads > max_inflight_plans + queue_depth.
  ServerConfig over_cfg = base_cfg;
  over_cfg.admission.enabled = true;
  over_cfg.admission.max_inflight_plans = 8;
  over_cfg.admission.queue_depth = 8;
  over_cfg.admission.starvation_bound = 8;
  over_cfg.admission.retry_after_micros = 500;

  const double target_qps = 2.0 * capacity_qps;
  const double duration_s = smoke ? 0.4 : 2.0;
  const size_t total_arrivals = std::max<size_t>(
      static_cast<size_t>(target_qps * duration_s), 200);

  std::printf("\n%10s %10s %10s %10s %9s %11s %11s %13s\n", "schedule",
              "offered/s", "goodput/s", "shed rate", "ratio", "sel shed%",
              "bulk shed%", "sel p99 us");

  double poisson_ratio = 0;
  for (const auto arrivals : {OpenLoopOptions::Arrivals::kPoisson,
                              OpenLoopOptions::Arrivals::kBurst}) {
    const bool poisson = arrivals == OpenLoopOptions::Arrivals::kPoisson;
    auto server = MakeServer(fx, over_cfg);
    DataAggregator::PeriodOutput p0 = fx.da->PublishSummary();
    server->AddSummary(p0.summary);

    // Live ingest racing the overload: the server sheds reads, never writes.
    UpdateStream stream(server.get(), over_cfg);
    std::atomic<bool> stop{false};
    std::thread producer([&] {
      Rng prng(29);
      while (!stop.load(std::memory_order_relaxed)) {
        size_t pick = prng.Uniform(fx.rows.size());
        int64_t key = fx.rows[pick].key();
        auto msg = fx.da->ModifyRecord(
            key, {key, JoinBValue(key),
                  static_cast<int64_t>(prng.Uniform(10'000)), 0});
        AUTHDB_CHECK(msg.ok());
        stream.PushUpdate(std::move(msg.value()));
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });

    OpenLoopOptions oopts;
    oopts.arrivals = arrivals;
    oopts.target_qps = target_qps;
    oopts.total_arrivals = total_arrivals;
    oopts.contexts = 10000;
    oopts.dispatch_threads = 48;  // > inflight(8) + queue(8): forces sheds
    oopts.batch_size = 4;
    oopts.burst_period_micros = 50'000;
    oopts.burst_duty = 0.2;
    oopts.burst_factor = 3.0;
    FillMix(&oopts, fx, n_b_values);
    oopts.seed = poisson ? 17 : 18;
    OpenLoopReport rep = RunOpenLoopLoad(server.get(), oopts);

    stop.store(true);
    producer.join();
    stream.Flush();
    ServerMetrics sm = stream.Metrics();
    AUTHDB_CHECK(sm.ingest.apply_failures == 0);
    AUTHDB_CHECK(rep.failures == 0);
    // The server survived 2x overload: every arrival got an answer — served,
    // an explicit shed, or NotFound — and the admission books balance.
    AUTHDB_CHECK(rep.served + rep.shed + rep.not_found == rep.offered);
    AUTHDB_CHECK(rep.server.admission.shed_total ==
                 static_cast<uint64_t>(rep.shed));

    const double ratio = capacity_qps > 0 ? rep.goodput_qps / capacity_qps : 0;
    const double sel_shed =
        rep.offered_selects > 0
            ? static_cast<double>(rep.shed_selects) /
                  static_cast<double>(rep.offered_selects)
            : 0;
    const size_t bulk_offered = rep.offered_projects + rep.offered_joins;
    const double bulk_shed =
        bulk_offered > 0 ? static_cast<double>(rep.shed_projects +
                                               rep.shed_joins) /
                               static_cast<double>(bulk_offered)
                         : 0;
    const uint64_t sel_p99 = rep.select_latency.PercentileMicros(0.99);
    std::printf("%10s %10.0f %10.0f %9.1f%% %8.2fx %10.1f%% %10.1f%% %13llu\n",
                poisson ? "poisson" : "burst", rep.offered_qps,
                rep.goodput_qps, 100 * rep.shed_rate, ratio, 100 * sel_shed,
                100 * bulk_shed, static_cast<unsigned long long>(sel_p99));

    const std::string suffix = poisson ? "" : "_burst";
    run->Metric("offered_qps" + suffix, rep.offered_qps);
    run->Metric("goodput_qps" + suffix, rep.goodput_qps);
    run->Metric("shed_rate" + suffix, rep.shed_rate);
    run->Metric("select_shed_fraction" + suffix, sel_shed);
    run->Metric("bulk_shed_fraction" + suffix, bulk_shed);
    run->Metric("select_p99_us" + suffix, static_cast<double>(sel_p99));
    run->Metric("queue_wait_us_total" + suffix,
                static_cast<double>(rep.server.admission.queue_wait_us));
    run->Metric("starvation_grants" + suffix,
                static_cast<double>(rep.server.admission.starvation_grants));
    if (poisson) poisson_ratio = ratio;

    // Priority-lane contract: when overload sheds a meaningful amount, the
    // bulk lane (projections/joins) must shed at least as hard as selects.
    if (rep.shed > 100) {
      AUTHDB_CHECK(sel_shed <= bulk_shed + 0.05);
    }
  }

  // The headline gate (RATIO_RE + goodput floor in compare_bench.py):
  // served throughput under 2x Poisson overload over closed-loop capacity.
  std::printf("\ngoodput ratio at 2x capacity (poisson): %.2fx\n",
              poisson_ratio);
  run->Metric("goodput_ratio_at_2x_capacity", poisson_ratio);

  // ---- Shed vs tampered: the verifier tells refusal from fraud ------------
  // An honest shed is payload-free and maps to ResourceExhausted (a serving
  // outcome); a shed CARRYING payload is a forgery attempt and must fail
  // verification outright. A served answer still verifies fresh.
  {
    auto server = MakeServer(fx, base_cfg);
    DataAggregator::PeriodOutput p0 = fx.da->PublishSummary();
    server->AddSummary(p0.summary);
    VarintGapCodec codec;
    ClientVerifier verifier(&fx.da->public_key(), &codec, fx.da->hash_mode());
    const uint64_t now = clock.NowMicros();
    const uint64_t epoch = server->freshness_tracker().current_epoch();
    const Query q = Query::Select(fx.key_lo, JoinCompositeKey(8, kJoinMaxDup));

    auto served = server->Execute(q);
    AUTHDB_CHECK(served.ok());

    QueryAnswer honest_shed = MakeShedAnswer(q.kind, epoch, 500);
    QueryAnswer tampered = honest_shed;
    tampered.selection.records = served.value().selection.records;

    // All three verdicts come out of ONE VerifyAnswerBatch call — the
    // batched client path must tell a served answer, an honest refusal,
    // and a forged refusal apart exactly like the sequential verifier.
    PlanBatch trio = PlanBatch::Of({q, q, q});
    std::vector<Result<QueryAnswer>> trio_answers;
    trio_answers.push_back(served.value());
    trio_answers.push_back(std::move(honest_shed));
    trio_answers.push_back(std::move(tampered));
    std::vector<Status> verdicts =
        verifier.VerifyAnswerBatch(trio, trio_answers, now, epoch);
    AUTHDB_CHECK(verdicts[0].ok());
    const Status& s_shed = verdicts[1];
    AUTHDB_CHECK(s_shed.IsResourceExhausted());
    const Status& s_tampered = verdicts[2];
    AUTHDB_CHECK(!s_tampered.ok());
    AUTHDB_CHECK(!s_tampered.IsResourceExhausted());
    std::printf("verifier: served ok; honest shed -> ResourceExhausted; "
                "shed + payload -> %s\n", s_tampered.message().c_str());
    run->Metric("shed_vs_tampered_distinguished", 1.0);
  }
}

}  // namespace
}  // namespace authdb

int main(int argc, char** argv) {
  authdb::bench::BenchRun run(argc, argv, "open_loop");
  authdb::Run(&run);
  return 0;
}
