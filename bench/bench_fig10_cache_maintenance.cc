// Figure 10: SigCache effectiveness and the Eager-vs-Lazy maintenance
// strategies under a mixed query/update workload, for Upd% = 10 and
// Upd% = 40 and growing cache budgets (0..40 KB as in the paper).
//
// Hybrid methodology: the real SigCache object processes every job over the
// paper's 1M-record position space (cover decomposition, invalidations and
// refreshes are real; EC additions are counted), and the measured per-job
// costs feed the calibrated queueing simulator for response times
// (DESIGN.md substitution #3). We report both the direct metric — point
// additions per proof — and the simulated response near QS saturation.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/sigcache.h"
#include "sim/calibration.h"
#include "sim/throughput_sim.h"

namespace authdb {
namespace {

struct Outcome {
  double query_ms, update_ms, adds_per_query;
};

Outcome RunConfig(std::shared_ptr<const BasContext> ctx,
                  const CryptoCosts& costs, uint64_t n, size_t cache_bytes,
                  SigCache::RefreshMode mode, double upd_fraction,
                  const SigCachePlanner::PlanResult& plan, size_t jobs,
                  double rate) {
  // One shared "signature" point keeps leaf fetches cheap; only the
  // *number* of additions matters for timing.
  Rng krng(3);
  BasPrivateKey key = BasPrivateKey::Generate(ctx, &krng);
  BasSignature leaf =
      key.Sign(Slice(std::string("leaf")), BasContext::HashMode::kFast);
  SigCache cache(ctx, n, mode, [&leaf](size_t) { return leaf; });
  SizeModel sm;
  size_t budget = cache_bytes / sm.signature_bytes;
  for (size_t i = 0; i < plan.chosen.size() && i < budget; ++i)
    cache.Pin(plan.chosen[i].level, plan.chosen[i].j);
  cache.WarmAll();  // offline initialization (Section 4.2)

  SystemConfig sys;
  ThroughputSimulator sim(sys);
  Rng rng(42);
  uint64_t q_mid = n / 1000;  // sf = 0.1%
  size_t total_adds = 0, n_queries = 0;
  auto gen = [&](bool is_update, Rng* r) {
    JobDemand d;
    d.is_update = is_update;
    if (is_update) {
      size_t pos = r->Uniform(n);
      uint64_t before = cache.eager_patch_adds();
      cache.OnLeafUpdate(pos, leaf, leaf);
      uint64_t patch = cache.eager_patch_adds() - before;
      d.da_cpu_seconds = costs.bas_sign;
      d.update_bytes = 512 + 36;
      d.qs_io_seconds = 3 * sys.io_seconds;
      d.qs_cpu_seconds = patch * costs.point_add;
    } else {
      uint64_t q = q_mid / 2 + r->Uniform(q_mid);
      size_t lo = r->Uniform(n - q);
      SigCache::AggStats stats;
      cache.RangeAggregate(lo, lo + q - 1, &stats);
      total_adds += stats.point_adds;
      ++n_queries;
      // I/O for the answer pages; the cache saves only the additions.
      d.qs_io_seconds = 10 * sys.io_seconds;
      d.qs_cpu_seconds = stats.point_adds * costs.point_add;
      d.reply_bytes = q * 512 + 28;
      d.verify_seconds = costs.bas_verify + q * costs.hash_to_point;
    }
    return d;
  };
  auto stats = sim.Run(rate, jobs, upd_fraction, gen, &rng);
  return Outcome{stats.mean_query_response * 1e3,
                 stats.mean_update_response * 1e3,
                 n_queries ? static_cast<double>(total_adds) / n_queries : 0};
}

void Run(bool smoke) {
  // Paper's 1M-record signature tree; a small one in smoke mode.
  const uint64_t n = smoke ? uint64_t{1} << 14 : uint64_t{1} << 20;
  const size_t jobs = smoke ? 60 : 300;
  const double rate = 50;  // "heavily loaded for BAS" (Section 5.4)
  bench::Header(
      "Figure 10: SigCache effectiveness, Eager vs Lazy",
      "N = 1M positions, 50 jobs/s, range queries sf = 0.1%; paper: ~30% "
      "response reduction at 40 KB; Lazy edges out Eager, more so at "
      "Upd% = 40. Columns: proof additions per query + simulated response");
  auto ctx = BasContext::Default();
  CryptoCosts costs = MeasureCryptoCosts(ctx, /*quick=*/true);
  // Plan against the workload's cardinality band [sf/2, 3sf/2].
  auto dist = CardinalityDist::UniformRange(
      n, std::max<uint64_t>(1, n / 2000), std::max<uint64_t>(2, 3 * n / 2000));
  auto plan = SigCachePlanner::Plan(n, dist, smoke ? 256 : 2048,
                                    /*edge_band=*/smoke ? 256 : 2048);

  std::vector<size_t> cache_kbs = smoke ? std::vector<size_t>{0, 5}
                                        : std::vector<size_t>{0, 5, 10, 20, 40};
  for (double upd : {0.10, 0.40}) {
    std::printf("\nUpd%% = %.0f\n", upd * 100);
    std::printf("%10s | %12s %12s %12s | %12s %12s %12s\n", "cache KB",
                "Eager adds/q", "Eager Q ms", "Eager U ms", "Lazy adds/q",
                "Lazy Q ms", "Lazy U ms");
    for (size_t kb : cache_kbs) {
      Outcome eager =
          RunConfig(ctx, costs, n, kb * 1024, SigCache::RefreshMode::kEager,
                    upd, plan, jobs, rate);
      Outcome lazy =
          RunConfig(ctx, costs, n, kb * 1024, SigCache::RefreshMode::kLazy,
                    upd, plan, jobs, rate);
      std::printf("%10zu | %12.0f %12.1f %12.1f | %12.0f %12.1f %12.1f\n",
                  kb, eager.adds_per_query, eager.query_ms, eager.update_ms,
                  lazy.adds_per_query, lazy.query_ms, lazy.update_ms);
    }
  }
}

}  // namespace
}  // namespace authdb

int main(int argc, char** argv) {
  authdb::bench::BenchRun run(argc, argv, "fig10_cache_maintenance");
  authdb::Run(run.smoke());
  return 0;
}
