// Figure 11 (a-d): primary-key/foreign-key equi-join VO sizes, BV (boundary
// values) versus BF (partitioned certified Bloom filters), on the TPC-E
// style Security >< Holding workload:
//   (a) match ratio alpha sweep      (b) filter bits per value m/IB
//   (c) partition size IB/p (+ filter update time)   (d) R selectivity
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "core/data_aggregator.h"
#include "core/join.h"
#include "workload/tpce.h"

namespace authdb {
namespace {

struct JoinBench {
  std::shared_ptr<const BasContext> ctx;
  SystemClock clock;
  Rng rng{11};
  std::unique_ptr<DataAggregator> da;
  std::unique_ptr<JoinAuthority> authority;
  std::unique_ptr<TpceJoinWorkload> workload;
  std::unique_ptr<JoinVerifier> verifier;
  SizeModel sm;

  explicit JoinBench(uint64_t scale) {
    ctx = BasContext::Default();
    DataAggregator::Options opt;
    opt.record_len = 64;  // Holding rows are 62.95 B in the paper
    opt.buffer_pages = 4096;
    opt.piggyback_renewal = false;
    da = std::make_unique<DataAggregator>(ctx, &clock, &rng, opt);
    TpceJoinWorkload::Config wcfg;
    wcfg.scale_divisor = scale;
    workload = std::make_unique<TpceJoinWorkload>(wcfg);
    auto stream = da->BulkLoad(workload->MakeHoldingRows());
    AUTHDB_CHECK(stream.ok());
    authority = std::make_unique<JoinAuthority>(ctx, da->private_key(),
                                                BasContext::HashMode::kFast);
    verifier = std::make_unique<JoinVerifier>(&da->public_key(),
                                              BasContext::HashMode::kFast);
  }

  std::vector<CertifiedPartition> Partitions(size_t ib_over_p,
                                             double bits_per_value) {
    return authority->BuildPartitions(workload->distinct_b(), ib_over_p,
                                      bits_per_value, clock.NowMicros());
  }

  /// Returns (BV KB, BF KB), verifying both answers.
  std::pair<double, double> Measure(
      const std::vector<int64_t>& r_values,
      const std::vector<CertifiedPartition>& parts) {
    JoinProver prover(ctx, &da->table(), &parts);
    auto bv = prover.Join(r_values, JoinMethod::kBoundaryValues);
    auto bf = prover.Join(r_values, JoinMethod::kBloomFilter);
    AUTHDB_CHECK(bv.ok() && bf.ok());
    AUTHDB_CHECK(verifier->Verify(r_values, bv.value()).ok());
    AUTHDB_CHECK(verifier->Verify(r_values, bf.value()).ok());
    return {bv.value().vo_size_paper(sm) / 1024.0,
            bf.value().vo_size_paper(sm) / 1024.0};
  }
};

void Run(bool smoke) {
  uint64_t scale = bench::ScaleDivisor(smoke ? 64 : 8);
  bench::Header(
      "Figure 11: Primary Key-Foreign Key Equi-Join VO size (BV vs BF)",
      "Security (|R| = IA = 6850/" + std::to_string(scale) +
          ") >< Holding (|S| = 894000/" + std::to_string(scale) +
          ", IB = 3425/" + std::to_string(scale) +
          "); VO sizes under the paper's accounting (4-byte S.B values)");
  JoinBench bench_state(scale);
  auto& b = bench_state;
  uint64_t nr = b.workload->nr();

  // (a) match ratio sweep; selectivity on R fixed at 20%.
  std::printf("\n(a) VO size vs match ratio alpha (sel 20%%, m/IB=8, "
              "IB/p=4)\n%8s %12s %12s\n", "alpha", "BV (KB)", "BF (KB)");
  auto parts_default = b.Partitions(4, 8.0);
  for (double alpha : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto values = b.workload->MakeSecurityValues(alpha, nr / 5);
    auto [bv, bf] = b.Measure(values, parts_default);
    std::printf("%8.1f %12.2f %12.2f\n", alpha, bv, bf);
  }

  // (b) filter size sweep at alpha = 0.5.
  std::printf("\n(b) VO size vs m/IB bits per distinct value (alpha=0.5)\n"
              "%8s %12s %12s\n", "m/IB", "BV (KB)", "BF (KB)");
  auto values_half = b.workload->MakeSecurityValues(0.5, nr / 5);
  for (double bits : {4.0, 8.0, 12.0, 16.0}) {
    auto parts = b.Partitions(4, bits);
    auto [bv, bf] = b.Measure(values_half, parts);
    std::printf("%8.0f %12.2f %12.2f\n", bits, bv, bf);
  }

  // (c) partition size sweep + filter rebuild time (the update cost that
  // argues for fine partitions).
  std::printf("\n(c) VO size vs IB/p distinct values per partition "
              "(alpha=0.5, m/IB=8)\n%8s %12s %12s %16s\n", "IB/p", "BV (KB)",
              "BF (KB)", "rebuild (usec)");
  for (size_t per : {size_t{2}, size_t{8}, size_t{32}, size_t{128},
                     size_t{512}, size_t{2048}}) {
    size_t clamped = std::min<size_t>(per, b.workload->ib());
    auto parts = b.Partitions(clamped, 8.0);
    auto [bv, bf] = b.Measure(values_half, parts);
    // Rebuild the largest partition (a deletion forces this).
    std::vector<int64_t> remaining(
        b.workload->distinct_b().begin(),
        b.workload->distinct_b().begin() +
            std::min<size_t>(clamped, b.workload->distinct_b().size()));
    Stopwatch sw;
    b.authority->RebuildPartition(parts[0], remaining,
                                  b.clock.NowMicros() + 1);
    std::printf("%8zu %12.2f %12.2f %16.1f\n", clamped, bv, bf,
                sw.ElapsedMicros());
  }

  // (d) selectivity sweep at alpha = 0.5.
  std::printf("\n(d) VO size vs selectivity on R (alpha=0.5, m/IB=8, "
              "IB/p=4)\n%8s %12s %12s\n", "sel %", "BV (KB)", "BF (KB)");
  for (double sel : {0.005, 0.25, 0.50, 0.75, 0.95}) {
    uint64_t n = std::max<uint64_t>(1, static_cast<uint64_t>(sel * nr));
    auto values = b.workload->MakeSecurityValues(0.5, n);
    auto [bv, bf] = b.Measure(values, parts_default);
    std::printf("%8.1f %12.2f %12.2f\n", sel * 100, bv, bf);
  }
  std::printf(
      "\nShape checks vs paper: BF consistently below BV; BV largest at "
      "small alpha; BF minimized around m/IB = 8-12; both grow with "
      "selectivity, BV steeper.\n");
}

}  // namespace
}  // namespace authdb

int main(int argc, char** argv) {
  authdb::bench::BenchRun run(argc, argv, "fig11_join");
  authdb::Run(run.smoke());
  return 0;
}
