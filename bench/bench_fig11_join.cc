// Figure 11 (a-d): primary-key/foreign-key equi-join VO sizes, BV (boundary
// values) versus BF (partitioned certified Bloom filters), on the TPC-E
// style Security >< Holding workload:
//   (a) match ratio alpha sweep      (b) filter bits per value m/IB
//   (c) partition size IB/p (+ filter update time)   (d) R selectivity
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "core/data_aggregator.h"
#include "core/join.h"
#include "crypto/bloom.h"
#include "workload/tpce.h"

namespace authdb {
namespace {

struct JoinBench {
  std::shared_ptr<const BasContext> ctx;
  SystemClock clock;
  Rng rng{11};
  std::unique_ptr<DataAggregator> da;
  std::unique_ptr<JoinAuthority> authority;
  std::unique_ptr<TpceJoinWorkload> workload;
  std::unique_ptr<JoinVerifier> verifier;
  SizeModel sm;

  explicit JoinBench(uint64_t scale) {
    ctx = BasContext::Default();
    DataAggregator::Options opt;
    opt.record_len = 64;  // Holding rows are 62.95 B in the paper
    opt.buffer_pages = 4096;
    opt.piggyback_renewal = false;
    da = std::make_unique<DataAggregator>(ctx, &clock, &rng, opt);
    TpceJoinWorkload::Config wcfg;
    wcfg.scale_divisor = scale;
    workload = std::make_unique<TpceJoinWorkload>(wcfg);
    auto stream = da->BulkLoad(workload->MakeHoldingRows());
    AUTHDB_CHECK(stream.ok());
    authority = std::make_unique<JoinAuthority>(ctx, da->private_key(),
                                                BasContext::HashMode::kFast);
    verifier = std::make_unique<JoinVerifier>(&da->public_key(),
                                              BasContext::HashMode::kFast);
  }

  std::vector<CertifiedPartition> Partitions(size_t ib_over_p,
                                             double bits_per_value) {
    return authority->BuildPartitions(workload->distinct_b(), ib_over_p,
                                      bits_per_value, clock.NowMicros());
  }

  /// Returns (BV KB, BF KB), verifying both answers.
  std::pair<double, double> Measure(
      const std::vector<int64_t>& r_values,
      const std::vector<CertifiedPartition>& parts) {
    JoinProver prover(ctx, &da->table(), &parts);
    auto bv = prover.Join(r_values, JoinMethod::kBoundaryValues);
    auto bf = prover.Join(r_values, JoinMethod::kBloomFilter);
    AUTHDB_CHECK(bv.ok() && bf.ok());
    AUTHDB_CHECK(verifier->Verify(r_values, bv.value()).ok());
    AUTHDB_CHECK(verifier->Verify(r_values, bf.value()).ok());
    return {bv.value().vo_size_paper(sm) / 1024.0,
            bf.value().vo_size_paper(sm) / 1024.0};
  }
};

void Run(bench::BenchRun* run) {
  const bool smoke = run->smoke();
  uint64_t scale = bench::ScaleDivisor(smoke ? 64 : 8);
  bench::Header(
      "Figure 11: Primary Key-Foreign Key Equi-Join VO size (BV vs BF)",
      "Security (|R| = IA = 6850/" + std::to_string(scale) +
          ") >< Holding (|S| = 894000/" + std::to_string(scale) +
          ", IB = 3425/" + std::to_string(scale) +
          "); VO sizes under the paper's accounting (4-byte S.B values)");
  JoinBench bench_state(scale);
  auto& b = bench_state;
  uint64_t nr = b.workload->nr();

  // (a) match ratio sweep; selectivity on R fixed at 20%.
  std::printf("\n(a) VO size vs match ratio alpha (sel 20%%, m/IB=8, "
              "IB/p=4)\n%8s %12s %12s\n", "alpha", "BV (KB)", "BF (KB)");
  auto parts_default = b.Partitions(4, 8.0);
  for (double alpha : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto values = b.workload->MakeSecurityValues(alpha, nr / 5);
    auto [bv, bf] = b.Measure(values, parts_default);
    std::printf("%8.1f %12.2f %12.2f\n", alpha, bv, bf);
  }

  // (b) filter size sweep at alpha = 0.5.
  std::printf("\n(b) VO size vs m/IB bits per distinct value (alpha=0.5)\n"
              "%8s %12s %12s\n", "m/IB", "BV (KB)", "BF (KB)");
  auto values_half = b.workload->MakeSecurityValues(0.5, nr / 5);
  for (double bits : {4.0, 8.0, 12.0, 16.0}) {
    auto parts = b.Partitions(4, bits);
    auto [bv, bf] = b.Measure(values_half, parts);
    std::printf("%8.0f %12.2f %12.2f\n", bits, bv, bf);
  }

  // (c) partition size sweep + filter rebuild time (the update cost that
  // argues for fine partitions).
  std::printf("\n(c) VO size vs IB/p distinct values per partition "
              "(alpha=0.5, m/IB=8)\n%8s %12s %12s %16s\n", "IB/p", "BV (KB)",
              "BF (KB)", "rebuild (usec)");
  for (size_t per : {size_t{2}, size_t{8}, size_t{32}, size_t{128},
                     size_t{512}, size_t{2048}}) {
    size_t clamped = std::min<size_t>(per, b.workload->ib());
    auto parts = b.Partitions(clamped, 8.0);
    auto [bv, bf] = b.Measure(values_half, parts);
    // Rebuild the largest partition (a deletion forces this).
    std::vector<int64_t> remaining(
        b.workload->distinct_b().begin(),
        b.workload->distinct_b().begin() +
            std::min<size_t>(clamped, b.workload->distinct_b().size()));
    Stopwatch sw;
    b.authority->RebuildPartition(parts[0], remaining,
                                  b.clock.NowMicros() + 1);
    std::printf("%8zu %12.2f %12.2f %16.1f\n", clamped, bv, bf,
                sw.ElapsedMicros());
  }

  // (d) selectivity sweep at alpha = 0.5.
  std::printf("\n(d) VO size vs selectivity on R (alpha=0.5, m/IB=8, "
              "IB/p=4)\n%8s %12s %12s\n", "sel %", "BV (KB)", "BF (KB)");
  for (double sel : {0.005, 0.25, 0.50, 0.75, 0.95}) {
    uint64_t n = std::max<uint64_t>(1, static_cast<uint64_t>(sel * nr));
    auto values = b.workload->MakeSecurityValues(0.5, n);
    auto [bv, bf] = b.Measure(values, parts_default);
    std::printf("%8.1f %12.2f %12.2f\n", sel * 100, bv, bf);
  }
  std::printf(
      "\nShape checks vs paper: BF consistently below BV; BV largest at "
      "small alpha; BF minimized around m/IB = 8-12; both grow with "
      "selectivity, BV steeper.\n");

  // (e) Incremental refresh vs full rebuild at the largest partition size.
  // Insert-only periods ship a small certified delta filter that the server
  // merges in place; a full rebuild re-adds every remaining value before
  // re-signing. Both paths pay one signature and one digest over the same
  // filter geometry, so the ratio isolates the work the delta path avoids.
  // Gated in CI with a hard >= 2x floor (compare_bench.py).
  {
    const size_t n_values = smoke ? (size_t{1} << 20) : (size_t{1} << 21);
    const size_t kDeltaInserts = 16;
    const int kReps = 5;
    std::vector<int64_t> all_values(n_values);
    for (size_t i = 0; i < n_values; ++i)
      all_values[i] = static_cast<int64_t>(2 * i);  // odd values stay free
    uint64_t ts = b.clock.NowMicros();
    std::vector<CertifiedPartition> big =
        b.authority->BuildPartitions(all_values, n_values, 8.0, ts);
    AUTHDB_CHECK(big.size() == 1);
    std::vector<int64_t> inserts(kDeltaInserts);
    for (size_t i = 0; i < kDeltaInserts; ++i)
      inserts[i] = static_cast<int64_t>(2 * i + 1);

    double rebuild_us = 0, delta_us = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch sw;
      CertifiedPartition rebuilt =
          b.authority->RebuildPartition(big[0], all_values, ts + rep + 1);
      double t = sw.ElapsedMicros();
      AUTHDB_CHECK(rebuilt.filter.ones() > 0);
      if (rep == 0 || t < rebuild_us) rebuild_us = t;
    }
    for (int rep = 0; rep < kReps; ++rep) {
      CertifiedPartition live = big[0];  // copy outside the stopwatch
      Stopwatch sw;
      PartitionDelta delta =
          b.authority->RefreshWithDelta(&live, inserts, ts + rep + 1);
      double t = sw.ElapsedMicros();
      AUTHDB_CHECK(delta.delta.bit_count() > 0);
      if (rep == 0 || t < delta_us) delta_us = t;
    }
    double refresh_ratio = delta_us > 0 ? rebuild_us / delta_us : 0;
    std::printf(
        "\n(e) Partition refresh cost at IB/p = %zu (insert-only period, "
        "%zu new values):\n    full rebuild %.1f usec, delta refresh %.1f "
        "usec -> delta is %.2fx cheaper\n",
        n_values, kDeltaInserts, rebuild_us, delta_us, refresh_ratio);
    run->Metric("refresh_cost_ratio_delta_vs_rebuild", refresh_ratio);
    run->Metric("refresh_rebuild_us", rebuild_us);
    run->Metric("refresh_delta_us", delta_us);
  }

  // (f) Batched vs scalar probe throughput on an out-of-cache filter —
  // the join hot path's ProbeMany (bulk hashing + block prefetch) against
  // the legacy one-key-at-a-time MayContainInt64 loop over the same keys.
  {
    const size_t n_keys = smoke ? (size_t{1} << 23) : (size_t{1} << 24);
    const size_t n_probes = smoke ? (size_t{1} << 19) : (size_t{1} << 22);
    const int kReps = 3;
    BloomFilter filter = BloomFilter::WithBitsPerKey(n_keys, 8.0);
    Rng prng(0x9e3779b9);
    for (size_t i = 0; i < n_keys; ++i)
      filter.AddInt64(static_cast<int64_t>(prng.Next()));
    std::vector<int64_t> probe_keys(n_probes);
    for (size_t i = 0; i < n_probes; ++i)
      probe_keys[i] = static_cast<int64_t>(prng.Next());
    std::vector<uint8_t> hits(n_probes);

    double scalar_us = 0, batched_us = 0;
    uint64_t sink = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch sw;
      for (size_t i = 0; i < n_probes; ++i)
        hits[i] = filter.MayContainInt64(probe_keys[i]) ? 1 : 0;
      double t = sw.ElapsedMicros();
      for (uint8_t h : hits) sink += h;
      if (rep == 0 || t < scalar_us) scalar_us = t;
    }
    for (int rep = 0; rep < kReps; ++rep) {
      Stopwatch sw;
      filter.ProbeMany(probe_keys.data(), n_probes, hits.data());
      double t = sw.ElapsedMicros();
      for (uint8_t h : hits) sink += h;
      if (rep == 0 || t < batched_us) batched_us = t;
    }
    AUTHDB_CHECK(sink > 0);  // keep the probe loops observable
    double speedup = batched_us > 0 ? scalar_us / batched_us : 0;
    double batched_mps = batched_us > 0 ? n_probes / batched_us : 0;
    std::printf(
        "\n(f) Join probe throughput, %zu probes against a %.1f KB filter:\n"
        "    scalar %.0f usec (%.1f Mprobe/s), ProbeMany %.0f usec "
        "(%.1f Mprobe/s) -> %.2fx\n",
        n_probes, filter.byte_size() / 1024.0, scalar_us,
        scalar_us > 0 ? n_probes / scalar_us : 0, batched_us, batched_mps,
        speedup);
    run->Metric("join_probe_throughput_speedup", speedup);
    run->Metric("join_probe_batched_mprobe_per_s", batched_mps);
  }
}

}  // namespace
}  // namespace authdb

int main(int argc, char** argv) {
  authdb::bench::BenchRun run(argc, argv, "fig11_join");
  authdb::Run(&run);
  return 0;
}
