// Figure 4: the configuration surface for join processing with Bloom
// filters — z = 0.0432*(IA/IB) + 2*(p/IB) against the viability plane
// z = 0.75 (primary-key/foreign-key case with m = 8*IB filter bits).
#include <cstdio>

#include "bench_util.h"
#include "core/models.h"

namespace authdb {
namespace {

void Run() {
  bench::Header("Figure 4: Configuration for Join Processing with Bloom "
                "Filters",
                "BF is viable while z < 0.75; entries marked * exceed the "
                "plane");
  std::printf("%10s |", "IA/IB \\ IB/p");
  const double ib_over_p[] = {2, 2.83, 4, 6.29, 8, 10};
  for (double c : ib_over_p) std::printf("%9.2f", c);
  std::printf("\n");
  for (double r : {1.0, 2.0, 4.0, 6.0, 8.0, 10.0}) {
    std::printf("%10.1f  |", r);
    for (double c : ib_over_p) {
      double z = models::ViabilityZ(r, c);
      std::printf("%8.3f%c", z, z < 0.75 ? ' ' : '*');
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper's anchors: IB/p >= 2.83 suffices at IA/IB = 1; IB/p >= 6.29 "
      "at IA/IB = 10.\n");
  std::printf("z(1, 2.83) = %.3f, z(10, 6.29) = %.3f (both ~0.75)\n",
              models::ViabilityZ(1, 2.83), models::ViabilityZ(10, 6.29));
}

}  // namespace
}  // namespace authdb

int main(int argc, char** argv) {
  // Pure closed-form table: smoke mode needs no shrinking.
  authdb::bench::BenchRun run(argc, argv, "fig4_join_config");
  authdb::Run();
  return 0;
}
