// Streaming freshness pipeline under load: sustained update-ingest rate
// through the per-shard apply queues, summary publication latency (push ->
// epoch advance across all shards), and how much read throughput the
// concurrent ingest costs at 1 vs 4 shards. The workload is TPC-E-shaped:
// the relation is the Holding subset of the join experiments (composite
// trade keys, ~ns/ib rows per security) and updates are quantity
// modifications of random holdings — the trade-update traffic the paper's
// freshness guarantee is about.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/logging.h"
#include "core/data_aggregator.h"
#include "server/sharded_query_server.h"
#include "server/update_stream.h"
#include "sim/multi_client.h"
#include "workload/tpce.h"

namespace authdb {
namespace {

struct PipelineWorkload {
  std::vector<Record> rows;           // TPC-E Holding subset
  std::vector<int64_t> keys;          // composite keys, for update targets
  std::vector<int64_t> b_values;      // security attribute, kept by updates
  int64_t key_lo = 0, key_hi = 0;
  std::vector<SignedRecordUpdate> bulk;  // DA certification stream
};

// One pre-signed ingest tape: U modify messages with a certified summary
// every `period` of them (plus the multi-update re-certifications each
// period close emits), replayable against any server built from `bulk`.
struct IngestTape {
  struct Entry {
    SignedRecordUpdate update;  // valid when !is_summary
    UpdateSummary summary;
    bool is_summary = false;
  };
  std::vector<Entry> entries;
  size_t updates = 0;
};

// The caller must have closed the bulk-certification period already, so
// the tape holds exactly n_updates/period periodic summaries and the timed
// replay window measures steady-state ingest, not the bulk close.
IngestTape MakeTape(DataAggregator* da, const PipelineWorkload& w, Rng* rng,
                    size_t n_updates, size_t period) {
  IngestTape tape;
  auto close_period = [&] {
    DataAggregator::PeriodOutput out = da->PublishSummary();
    for (SignedRecordUpdate& msg : out.recertifications) {
      IngestTape::Entry e;
      e.update = std::move(msg);
      tape.entries.push_back(std::move(e));
    }
    IngestTape::Entry e;
    e.summary = std::move(out.summary);
    e.is_summary = true;
    tape.entries.push_back(std::move(e));
  };
  for (size_t i = 0; i < n_updates; ++i) {
    size_t pick = rng->Uniform(w.keys.size());
    int64_t key = w.keys[pick];
    auto msg = da->ModifyRecord(  // a trade: qty changes, security stays
        key,
        {key, w.b_values[pick], static_cast<int64_t>(rng->Uniform(10'000))});
    AUTHDB_CHECK(msg.ok());
    IngestTape::Entry e;
    e.update = std::move(msg.value());
    tape.entries.push_back(std::move(e));
    ++tape.updates;
    if ((i + 1) % period == 0) close_period();
  }
  return tape;
}

ServerConfig PipelineConfig(size_t shards) {
  ServerConfig cfg;
  cfg.node.record_len = 128;
  cfg.serving.worker_threads = shards;
  return cfg;
}

std::unique_ptr<ShardedQueryServer> MakeServer(
    const std::shared_ptr<const BasContext>& ctx, const PipelineWorkload& w,
    size_t shards) {
  auto server = std::make_unique<ShardedQueryServer>(
      ctx, ShardRouter::Uniform(shards, w.key_lo, w.key_hi),
      PipelineConfig(shards));
  for (const auto& msg : w.bulk) {
    Status s = server->ApplyUpdate(msg);
    AUTHDB_CHECK(s.ok());
  }
  return server;
}

void Run(bench::BenchRun* run) {
  const bool smoke = run->smoke();

  TpceJoinWorkload::Config tcfg;
  tcfg.scale_divisor = smoke ? 2048 : 256;
  TpceJoinWorkload tpce(tcfg);
  PipelineWorkload w;
  w.rows = tpce.MakeHoldingRows();
  for (const Record& r : w.rows) {
    w.keys.push_back(r.key());
    w.b_values.push_back(r.attrs[1]);
  }
  w.key_lo = w.keys.front();
  w.key_hi = w.keys.back();

  const size_t n_updates = smoke ? 200 : 2000;
  const size_t period = n_updates / 8;  // 8 rho-periods over the tape
  const size_t clients = 4;
  const size_t ops_per_client = smoke ? 50 : 300;

  bench::Header(
      "Streaming freshness pipeline (TPC-E Holding updates + range reads)",
      "rows = " + std::to_string(w.rows.size()) + ", tape = " +
          std::to_string(n_updates) + " updates / 8 summaries; " +
          std::to_string(clients) + " closed-loop readers");

  SystemClock clock;
  auto ctx = BasContext::Default();

  std::printf("\n%8s %14s %14s %16s %16s %12s\n", "shards", "ingest/s",
              "publish mean", "read qps idle", "read qps live", "retained");
  for (size_t shards : {size_t{1}, size_t{4}}) {
    // A fresh DA (same seeds) per configuration: the 1- and 4-shard rows
    // measure identical workloads instead of inheriting the previous
    // iteration's record versions and half-open summary period.
    Rng rng(11);
    DataAggregator::Options da_opt;
    da_opt.record_len = 128;
    da_opt.piggyback_renewal = false;
    DataAggregator da(ctx, &clock, &rng, da_opt);
    auto bulk = da.BulkLoad(w.rows);
    AUTHDB_CHECK(bulk.ok());
    w.bulk = std::move(bulk.value());
    // Close the bulk-certification period outside the timed tape (bulk
    // marks are single, so it emits no re-certifications).
    DataAggregator::PeriodOutput p0 = da.PublishSummary();
    Rng tape_rng(23);
    IngestTape tape = MakeTape(&da, w, &tape_rng, n_updates, period);

    auto server = MakeServer(ctx, w, shards);
    server->AddSummary(p0.summary);
    for (const SignedRecordUpdate& m : p0.recertifications) {
      Status s = server->ApplyUpdate(m);
      AUTHDB_CHECK(s.ok());
    }

    // Phase A: drain the pre-signed tape as fast as the apply queues go.
    double ingest_rate = 0;
    double publish_mean = 0;
    {
      UpdateStream stream(server.get(), PipelineConfig(shards));
      Stopwatch sw;
      for (const IngestTape::Entry& e : tape.entries) {
        if (e.is_summary) {
          stream.PushSummary(e.summary);
        } else {
          stream.PushUpdate(e.update);
        }
      }
      stream.Flush();
      double elapsed = sw.ElapsedSeconds();
      ServerMetrics m = stream.Metrics();
      AUTHDB_CHECK(m.ingest.apply_failures == 0);
      ingest_rate =
          elapsed > 0 ? static_cast<double>(m.ingest.updates_pushed) / elapsed
                      : 0;
      publish_mean =
          m.ingest.summaries_published > 0
              ? static_cast<double>(m.ingest.publish_wait_us) /
                    static_cast<double>(m.ingest.summaries_published)
              : 0;
    }

    // Phase B: read throughput, idle vs. racing a live DA feed.
    MultiClientOptions mopts;
    mopts.clients = clients;
    mopts.ops_per_client = ops_per_client;
    mopts.key_lo = w.key_lo;
    mopts.key_hi = w.key_hi;
    mopts.query_span = 64;
    mopts.seed = 99;
    MultiClientReport idle = RunMultiClientLoad(server.get(), {}, mopts);
    AUTHDB_CHECK(idle.failures == 0);

    double live_qps = 0;
    {
      UpdateStream stream(server.get(), PipelineConfig(shards));
      std::atomic<bool> stop{false};
      std::thread producer([&] {
        Rng prng(31);
        size_t since_summary = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          size_t pick = prng.Uniform(w.keys.size());
          int64_t key = w.keys[pick];
          auto msg = da.ModifyRecord(
              key, {key, w.b_values[pick],
                    static_cast<int64_t>(prng.Uniform(10'000))});
          AUTHDB_CHECK(msg.ok());
          stream.PushUpdate(std::move(msg.value()));
          if (++since_summary >= period) {
            since_summary = 0;
            DataAggregator::PeriodOutput out = da.PublishSummary();
            for (const SignedRecordUpdate& m : out.recertifications)
              stream.PushUpdate(m);
            stream.PushSummary(std::move(out.summary));
          }
        }
      });
      MultiClientReport live = RunMultiClientLoad(server.get(), {}, mopts);
      stop.store(true);
      producer.join();
      stream.Flush();
      AUTHDB_CHECK(live.failures == 0);
      AUTHDB_CHECK(stream.Metrics().ingest.apply_failures == 0);
      live_qps = live.ops_per_second;
    }

    double retained =
        idle.ops_per_second > 0 ? live_qps / idle.ops_per_second : 0;
    std::printf("%8zu %14.0f %11.0f us %16.0f %16.0f %11.0f%%\n",
                shards, ingest_rate, publish_mean,
                idle.ops_per_second, live_qps, retained * 100);

    std::string suffix = "_shards_" + std::to_string(shards);
    run->Metric("ingest_updates_per_s" + suffix, ingest_rate);
    run->Metric("publish_mean_us" + suffix, publish_mean);
    run->Metric("read_qps_idle" + suffix, idle.ops_per_second);
    run->Metric("read_qps_live_ingest" + suffix, live_qps);
    run->Metric("read_retention_pct" + suffix, retained * 100);
  }
}

}  // namespace
}  // namespace authdb

int main(int argc, char** argv) {
  authdb::bench::BenchRun run(argc, argv, "freshness_pipeline");
  authdb::Run(&run);
  return 0;
}
