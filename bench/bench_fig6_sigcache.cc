// Figure 6: reduction in VO construction cost versus the number of cached
// signature pairs chosen by SigCache (Algorithm 1), for the skewed
// (truncated-harmonic) and uniform query-cardinality distributions over a
// 1M-record signature tree.
#include <cstdint>
#include <cstdio>

#include "bench_util.h"
#include "core/sigcache.h"
#include "sim/calibration.h"

namespace authdb {
namespace {

double RunDist(const char* name, const CardinalityDist& dist,
               double add_ms) {
  auto plan = SigCachePlanner::Plan(dist.N(), dist, 20);
  std::printf("\n%s distribution, N = %llu\n", name,
              static_cast<unsigned long long>(dist.N()));
  std::printf("  no caching: %.4f ms/query (%.0f point additions)\n",
              plan.base_cost * add_ms, plan.base_cost);
  std::printf("  %6s %16s %14s\n", "pairs", "cost (ms/query)", "reduction");
  for (size_t k = 0; k < plan.cost_after_pairs.size(); ++k) {
    double cost = plan.cost_after_pairs[k];
    std::printf("  %6zu %16.4f %13.1f%%\n", k, cost * add_ms,
                100.0 * (plan.base_cost - cost) / plan.base_cost);
  }
  std::printf("  chosen nodes (level, j): ");
  for (size_t i = 0; i < plan.chosen.size() && i < 16; ++i)
    std::printf("T%d,%llu ", plan.chosen[i].level,
                static_cast<unsigned long long>(plan.chosen[i].j));
  std::printf("\n");
  // The paper's headline: fractional VO-cost reduction with 8 cached
  // pairs. A quotient of two analytic planner costs — deterministic for a
  // given tree size, so the bench gate can pin it tightly.
  size_t k = plan.cost_after_pairs.size() > 8 ? 8
             : plan.cost_after_pairs.size() - 1;
  return plan.base_cost > 0
             ? (plan.base_cost - plan.cost_after_pairs[k]) / plan.base_cost
             : 0;
}

void Run(bench::BenchRun* run) {
  const bool smoke = run->smoke();
  bench::Header("Figure 6: Reduction in VO Construction Cost",
                "paper: ~57% (skewed) and ~75% (uniform) reduction with 8 "
                "cached pairs; chosen nodes are second-from-edge, "
                "descending levels");
  // 1M records as in the paper; a small tree in smoke mode.
  const uint64_t n = smoke ? uint64_t{1} << 12 : uint64_t{1} << 20;
  auto ctx = BasContext::Default();
  // Calibrate the EC point-addition cost in milliseconds.
  CryptoCosts costs = MeasureCryptoCosts(ctx, /*quick=*/true);
  double add_ms = costs.point_add * 1e3;
  std::printf("measured EC point addition: %.3f us\n", add_ms * 1e3);
  double skew8 = RunDist("Skewed P(q) ~ 1/q", CardinalityDist::Harmonic(n),
                         add_ms);
  double uni8 = RunDist("Uniform P(q) = 1/N", CardinalityDist::Uniform(n),
                        add_ms);
  run->Metric("vo_reduction_ratio_skewed_8pairs", skew8);
  run->Metric("vo_reduction_ratio_uniform_8pairs", uni8);
}

}  // namespace
}  // namespace authdb

int main(int argc, char** argv) {
  authdb::bench::BenchRun run(argc, argv, "fig6_sigcache");
  authdb::Run(&run);
  return 0;
}
