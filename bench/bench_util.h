#ifndef AUTHDB_BENCH_BENCH_UTIL_H_
#define AUTHDB_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace authdb {
namespace bench {

/// AUTHDB_BENCH_SCALE divides the paper's dataset sizes so the full harness
/// finishes in minutes on a laptop; set it to 1 to run at paper scale.
inline uint64_t ScaleDivisor(uint64_t def = 16) {
  const char* env = std::getenv("AUTHDB_BENCH_SCALE");
  if (env == nullptr) return def;
  uint64_t v = std::strtoull(env, nullptr, 10);
  return v == 0 ? def : v;
}

inline void Header(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
}

/// Shared driver harness for the bench binaries. Flags:
///   --smoke        minimal-iteration mode (CI smoke job): each bench
///                  shrinks its workload so the binary finishes in seconds
///                  while still executing every code path it measures.
///   --json <path>  write a machine-readable run report ({"bench": ...,
///                  "smoke": ..., "elapsed_seconds": ..., "metrics": {...}})
///                  on exit; the CI smoke job uploads these as artifacts.
/// A bench may declare extra boolean flags (e.g. "--no-batch" for the
/// batching ablation) via `extra_flags`; query them with Flag(). Anything
/// not declared still exits 2, so typos never silently change a run.
/// Benches record headline numbers via Metric(); the report is written by
/// the destructor so every early `return` still produces one.
class BenchRun {
 public:
  BenchRun(int argc, char** argv, std::string name,
           std::vector<std::string> extra_flags = {})
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--smoke") == 0) {
        smoke_ = true;
      } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        json_path_ = argv[++i];
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        json_path_ = argv[i] + 7;
      } else {
        bool known = false;
        for (const std::string& f : extra_flags) {
          if (f == argv[i]) {
            set_flags_.push_back(f);
            known = true;
            break;
          }
        }
        if (known) continue;
        std::string extras;
        for (const std::string& f : extra_flags) extras += ", " + f;
        std::fprintf(stderr, "%s: unknown flag %s (known: --smoke, --json "
                     "<path>%s)\n", name_.c_str(), argv[i], extras.c_str());
        std::exit(2);
      }
    }
  }

  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

  ~BenchRun() {
    if (json_path_.empty()) return;
    std::FILE* f = std::fopen(json_path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path_.c_str());
      return;
    }
    double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    std::fprintf(f, "{\"bench\": \"%s\", \"smoke\": %s, "
                 "\"elapsed_seconds\": %.3f, \"metrics\": {",
                 name_.c_str(), smoke_ ? "true" : "false", elapsed);
    for (size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(f, "%s\"%s\": %.6g", i == 0 ? "" : ", ",
                   metrics_[i].first.c_str(), metrics_[i].second);
    }
    std::fprintf(f, "}}\n");
    std::fclose(f);
  }

  bool smoke() const { return smoke_; }
  /// True iff a declared extra flag was passed on the command line.
  bool Flag(const std::string& name) const {
    for (const std::string& f : set_flags_) {
      if (f == name) return true;
    }
    return false;
  }
  void Metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

 private:
  std::string name_;
  std::string json_path_;
  bool smoke_ = false;
  std::vector<std::string> set_flags_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bench
}  // namespace authdb

#endif  // AUTHDB_BENCH_BENCH_UTIL_H_
