#ifndef AUTHDB_BENCH_BENCH_UTIL_H_
#define AUTHDB_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace authdb {
namespace bench {

/// AUTHDB_BENCH_SCALE divides the paper's dataset sizes so the full harness
/// finishes in minutes on a laptop; set it to 1 to run at paper scale.
inline uint64_t ScaleDivisor(uint64_t def = 16) {
  const char* env = std::getenv("AUTHDB_BENCH_SCALE");
  if (env == nullptr) return def;
  uint64_t v = std::strtoull(env, nullptr, 10);
  return v == 0 ? def : v;
}

inline void Header(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
}

}  // namespace bench
}  // namespace authdb

#endif  // AUTHDB_BENCH_BENCH_UTIL_H_
