// Sharded serving throughput: aggregate qps of the multi-threaded sharded
// query server as the shard count grows, measured with the closed-loop
// multi-client driver (real proof construction, real stitching, real
// latencies — no simulator). The paper measures a single-threaded QS; this
// bench is the scaling story on top: K shards serve a uniform range
// workload from C concurrent clients, and speedup tracks min(K, cores).
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/logging.h"
#include "core/data_aggregator.h"
#include "core/verifier.h"
#include "server/sharded_query_server.h"
#include "sim/multi_client.h"

namespace authdb {
namespace {

struct Workload {
  uint64_t n_records;
  size_t clients;
  size_t ops_per_client;
  uint64_t query_span;
  double update_fraction;
};

double RunShards(const std::shared_ptr<const BasContext>& ctx,
                 DataAggregator* da,
                 const std::vector<SignedRecordUpdate>& stream,
                 const Workload& w, size_t shards,
                 MultiClientReport* report_out) {
  ServerConfig cfg;
  cfg.node.record_len = 128;
  cfg.serving.worker_threads = shards;  // one fan-out worker per shard
  ShardedQueryServer server(
      ctx, ShardRouter::Uniform(shards, 0,
                                static_cast<int64_t>(w.n_records) - 1),
      cfg);
  for (const auto& msg : stream) {
    Status s = server.ApplyUpdate(msg);
    AUTHDB_CHECK(s.ok());
  }

  std::vector<SignedRecordUpdate> updates;
  if (w.update_fraction > 0) {
    Rng urng(77);
    size_t n_updates = static_cast<size_t>(
        static_cast<double>(w.clients * w.ops_per_client) *
        w.update_fraction * 1.5);
    for (size_t i = 0; i < n_updates; ++i) {
      int64_t key = static_cast<int64_t>(urng.Uniform(w.n_records));
      auto msg = da->ModifyRecord(key, {key, static_cast<int64_t>(i)});
      AUTHDB_CHECK(msg.ok());
      updates.push_back(std::move(msg.value()));
    }
  }

  MultiClientOptions opts;
  opts.clients = w.clients;
  opts.ops_per_client = w.ops_per_client;
  opts.update_fraction = w.update_fraction;
  opts.key_lo = 0;
  opts.key_hi = static_cast<int64_t>(w.n_records) - 1;
  opts.query_span = w.query_span;
  opts.seed = 42;
  MultiClientReport report =
      RunMultiClientLoad(&server, std::move(updates), opts);
  AUTHDB_CHECK(report.failures == 0);
  if (report_out != nullptr) *report_out = report;
  return report.ops_per_second;
}

void Run(bench::BenchRun* run) {
  const bool smoke = run->smoke();
  Workload w;
  w.n_records = smoke ? 1024 : 8192;
  w.clients = 4;
  w.ops_per_client = smoke ? 50 : 400;
  w.query_span = 32;
  w.update_fraction = 0.0;  // the uniform read workload is the headline

  unsigned cores = std::thread::hardware_concurrency();
  bench::Header(
      "Sharded serving throughput (real proofs, closed-loop clients)",
      "N = " + std::to_string(w.n_records) + " records, " +
          std::to_string(w.clients) + " clients, span " +
          std::to_string(w.query_span) + "; " + std::to_string(cores) +
          " hardware threads — speedup is capped by min(shards, cores)");

  SystemClock clock;
  Rng rng(4);
  auto ctx = BasContext::Default();
  DataAggregator::Options da_opt;
  da_opt.record_len = 128;
  da_opt.piggyback_renewal = false;
  DataAggregator da(ctx, &clock, &rng, da_opt);
  std::vector<Record> records;
  for (uint64_t k = 0; k < w.n_records; ++k) {
    Record r;
    r.attrs = {static_cast<int64_t>(k), static_cast<int64_t>(k * 3)};
    records.push_back(r);
  }
  auto stream = da.BulkLoad(std::move(records));
  AUTHDB_CHECK(stream.ok());

  std::printf("\n%8s %12s %12s %12s %12s %10s\n", "shards", "qps", "mean us",
              "p50 us", "p99 us", "speedup");
  double base_qps = 0;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    MultiClientReport report;
    double qps = RunShards(ctx, &da, stream.value(), w, shards, &report);
    if (shards == 1) base_qps = qps;
    double speedup = base_qps > 0 ? qps / base_qps : 0;
    std::printf("%8zu %12.0f %12.0f %12llu %12llu %9.2fx\n", shards, qps,
                report.query_latency.MeanMicros(),
                static_cast<unsigned long long>(
                    report.query_latency.PercentileMicros(0.50)),
                static_cast<unsigned long long>(
                    report.query_latency.PercentileMicros(0.99)),
                speedup);
    run->Metric("qps_shards_" + std::to_string(shards), qps);
    if (shards == 4) run->Metric("speedup_4_shards", speedup);
  }

  // The mixed workload: 10% pre-signed DA updates drained concurrently.
  w.update_fraction = 0.10;
  std::printf("\nWith Upd%% = 10 (pre-signed DA modifications):\n");
  std::printf("%8s %12s %14s %14s\n", "shards", "qps", "query p99 us",
              "update p99 us");
  for (size_t shards : {size_t{1}, size_t{4}}) {
    MultiClientReport report;
    double qps = RunShards(ctx, &da, stream.value(), w, shards, &report);
    std::printf("%8zu %12.0f %14llu %14llu\n", shards, qps,
                static_cast<unsigned long long>(
                    report.query_latency.PercentileMicros(0.99)),
                static_cast<unsigned long long>(
                    report.update_latency.PercentileMicros(0.99)));
    run->Metric("mixed_qps_shards_" + std::to_string(shards), qps);
  }
}

}  // namespace
}  // namespace authdb

int main(int argc, char** argv) {
  authdb::bench::BenchRun run(argc, argv, "sharded_throughput");
  authdb::Run(&run);
  return 0;
}
