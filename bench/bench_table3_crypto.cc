// Table 3: costs of the cryptographic primitives — BAS (160-bit group) vs
// condensed RSA (1024-bit) vs SHA hashing, measured on this machine with
// the library's own implementations. Also reports the multi-buffer SHA
// front end's speedup over the forced-scalar tier: a same-run quotient
// (machine-independent enough to gate) with an absolute >= 1.5x floor in
// compare_bench.py — the crypto hot path must actually buy its keep.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/slice.h"
#include "crypto/simd/cpu_features.h"
#include "crypto/simd/sha_multibuf.h"
#include "sim/calibration.h"

namespace authdb {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Digest throughput of one SHA tier over `count` fixed-size messages,
/// in digests/second (best of `reps` passes — the quotient of two bests
/// from the same run is what the gate pins).
template <typename DigestT, typename HashManyTier>
double TierDigestsPerSec(simd::ShaDispatch tier, const Slice* msgs,
                         size_t count, int reps, HashManyTier hash_many) {
  std::vector<DigestT> out(count);
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    hash_many(tier, msgs, count, out.data());
    double s = SecondsSince(t0);
    if (s > 0) best = best > count / s ? best : count / s;
  }
  return best;
}

void Run(bench::BenchRun* run) {
  const bool smoke = run->smoke();
  bench::Header("Table 3: Costs of Cryptographic Primitives",
                "(paper's 'Current' column regenerated with the in-tree "
                "implementations; 256-bit supersingular curve, 160-bit "
                "subgroup, Tate pairing)");
  auto ctx = BasContext::Default();
  CryptoCosts c = MeasureCryptoCosts(ctx, /*quick=*/smoke);
  std::printf("Bilinear Aggregate Signature\n");
  std::printf("  Individual signing        %10.3f ms\n", c.bas_sign * 1e3);
  std::printf("  Individual verification   %10.3f ms\n", c.bas_verify * 1e3);
  std::printf("  1000-sig aggregation      %10.3f ms\n",
              c.bas_aggregate_1000 * 1e3);
  std::printf("  1000-sig agg verification %10.3f ms\n",
              c.bas_verify_1000 * 1e3);
  std::printf("Condensed RSA (1024-bit)\n");
  std::printf("  Individual signing        %10.3f ms\n", c.rsa_sign * 1e3);
  std::printf("  Individual verification   %10.3f ms\n", c.rsa_verify * 1e3);
  std::printf("  1000-sig aggregation      %10.3f ms\n",
              c.rsa_aggregate_1000 * 1e3);
  std::printf("  1000-sig agg verification %10.3f ms\n",
              c.rsa_verify_1000 * 1e3);
  std::printf("Secure Hashing Algorithm (SHA-1)\n");
  std::printf("  256-byte message          %10.3f us\n", c.sha_256b * 1e6);
  std::printf("  512-byte message          %10.3f us\n", c.sha_512b * 1e6);
  std::printf("  1024-byte message         %10.3f us\n", c.sha_1024b * 1e6);

  // ---- Multi-buffer front end vs forced scalar --------------------------
  // The workload mirrors the serving hot path: many independent 256-byte
  // tuple digests per call (chain messages and projection spines batch at
  // comparable sizes). Both legs run tier-forced in the same process, so
  // the speedup is a same-run quotient; the scalar absolutes stay
  // informational (host-dependent).
  const simd::ShaDispatch active = simd::ActiveShaDispatch();
  const size_t count = smoke ? 4096 : 65536;
  const int reps = smoke ? 5 : 9;
  std::vector<uint8_t> buf(count * 256);
  for (size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<uint8_t>(i * 2654435761u >> 7);
  std::vector<Slice> msgs(count);
  for (size_t i = 0; i < count; ++i)
    msgs[i] = Slice(buf.data() + i * 256, 256);

  double sha1_scalar = TierDigestsPerSec<Digest160>(
      simd::ShaDispatch::kScalar, msgs.data(), count, reps,
      simd::Sha1HashManyTier);
  double sha1_simd = TierDigestsPerSec<Digest160>(
      active, msgs.data(), count, reps, simd::Sha1HashManyTier);
  double sha256_scalar = TierDigestsPerSec<Digest256>(
      simd::ShaDispatch::kScalar, msgs.data(), count, reps,
      simd::Sha256HashManyTier);
  double sha256_simd = TierDigestsPerSec<Digest256>(
      active, msgs.data(), count, reps, simd::Sha256HashManyTier);
  double sha1_speedup = sha1_scalar > 0 ? sha1_simd / sha1_scalar : 0;
  double sha256_speedup = sha256_scalar > 0 ? sha256_simd / sha256_scalar : 0;

  std::printf("\nMulti-buffer SHA front end (dispatch tier: %s, "
              "%zu x 256-byte messages)\n",
              simd::ShaDispatchName(active), count);
  std::printf("  SHA-1   scalar %10.0f dig/s   %-6s %10.0f dig/s   %.2fx\n",
              sha1_scalar, simd::ShaDispatchName(active), sha1_simd,
              sha1_speedup);
  std::printf("  SHA-256 scalar %10.0f dig/s   %-6s %10.0f dig/s   %.2fx\n",
              sha256_scalar, simd::ShaDispatchName(active), sha256_simd,
              sha256_speedup);

  run->Metric("sha_dispatch_tier", static_cast<double>(active));
  run->Metric("sha1_scalar_digests_per_s", sha1_scalar);
  run->Metric("sha256_scalar_digests_per_s", sha256_scalar);
  run->Metric("sha1_multibuf_speedup", sha1_speedup);
  run->Metric("sha256_multibuf_speedup", sha256_speedup);

  std::printf("\nShape checks vs paper: RSA verify << BAS verify; "
              "aggregation cheap for both; hashing orders of magnitude "
              "below signing.\n");
}

}  // namespace
}  // namespace authdb

int main(int argc, char** argv) {
  authdb::bench::BenchRun run(argc, argv, "table3_crypto");
  authdb::Run(&run);
  return 0;
}
