// Table 3: costs of the cryptographic primitives — BAS (160-bit group) vs
// condensed RSA (1024-bit) vs SHA hashing, measured on this machine with
// the library's own implementations.
#include <cstdio>

#include "bench_util.h"
#include "sim/calibration.h"

namespace authdb {
namespace {

void Run(bool smoke) {
  bench::Header("Table 3: Costs of Cryptographic Primitives",
                "(paper's 'Current' column regenerated with the in-tree "
                "implementations; 256-bit supersingular curve, 160-bit "
                "subgroup, Tate pairing)");
  auto ctx = BasContext::Default();
  CryptoCosts c = MeasureCryptoCosts(ctx, /*quick=*/smoke);
  std::printf("Bilinear Aggregate Signature\n");
  std::printf("  Individual signing        %10.3f ms\n", c.bas_sign * 1e3);
  std::printf("  Individual verification   %10.3f ms\n", c.bas_verify * 1e3);
  std::printf("  1000-sig aggregation      %10.3f ms\n",
              c.bas_aggregate_1000 * 1e3);
  std::printf("  1000-sig agg verification %10.3f ms\n",
              c.bas_verify_1000 * 1e3);
  std::printf("Condensed RSA (1024-bit)\n");
  std::printf("  Individual signing        %10.3f ms\n", c.rsa_sign * 1e3);
  std::printf("  Individual verification   %10.3f ms\n", c.rsa_verify * 1e3);
  std::printf("  1000-sig aggregation      %10.3f ms\n",
              c.rsa_aggregate_1000 * 1e3);
  std::printf("  1000-sig agg verification %10.3f ms\n",
              c.rsa_verify_1000 * 1e3);
  std::printf("Secure Hashing Algorithm (SHA-1)\n");
  std::printf("  256-byte message          %10.3f us\n", c.sha_256b * 1e6);
  std::printf("  512-byte message          %10.3f us\n", c.sha_512b * 1e6);
  std::printf("  1024-byte message         %10.3f us\n", c.sha_1024b * 1e6);
  std::printf("\nShape checks vs paper: RSA verify << BAS verify; "
              "aggregation cheap for both; hashing orders of magnitude "
              "below signing.\n");
}

}  // namespace
}  // namespace authdb

int main(int argc, char** argv) {
  authdb::bench::BenchRun run(argc, argv, "table3_crypto");
  authdb::Run(run.smoke());
  return 0;
}
