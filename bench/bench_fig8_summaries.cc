// Figure 8: compressed update summaries — per-bitmap size and average
// signature age versus the renewal threshold rho', and the total summary
// volume a freshness check needs (which bottoms out at an intermediate
// rho', 171 KB at rho = 1 s / rho' = 900 s in the paper).
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "crypto/bitmap.h"

namespace authdb {
namespace {

struct Point {
  double bitmap_bytes, mean_age_sec, total_bytes;
};

/// Steady-state simulation of the DA's certification timestamps: updates
/// mark random records; the renewal process re-certifies anything older
/// than rho'. Ages start uniform in [0, rho') (the steady-state profile).
Point Simulate(uint64_t n, double rho, double rho_prime_over_rho,
               double updates_per_sec) {
  double rho_prime = rho * rho_prime_over_rho;
  Rng rng(88);
  std::vector<double> ts(n);
  for (uint64_t i = 0; i < n; ++i) ts[i] = -rng.NextDouble() * rho_prime;
  VarintGapCodec codec;
  double t = 0;
  const int periods = 24, warmup = 8;
  double sum_bytes = 0, sum_age = 0;
  int measured = 0;
  for (int p = 0; p < periods; ++p) {
    Bitmap bm(n);
    uint64_t updates = static_cast<uint64_t>(updates_per_sec * rho);
    for (uint64_t u = 0; u < updates; ++u) {
      uint64_t rid = rng.Uniform(n);
      ts[rid] = t + rng.NextDouble() * rho;
      bm.Set(rid);
    }
    t += rho;
    for (uint64_t i = 0; i < n; ++i) {
      if (t - ts[i] > rho_prime) {
        ts[i] = t;
        bm.Set(i);
      }
    }
    if (p >= warmup) {
      sum_bytes += codec.Encode(bm).size();
      double age = 0;
      for (uint64_t i = 0; i < n; ++i) age += t - ts[i];
      sum_age += age / n;
      ++measured;
    }
  }
  Point out;
  out.bitmap_bytes = sum_bytes / measured;
  out.mean_age_sec = sum_age / measured;
  // A freshness check needs the summaries back to the signature age.
  out.total_bytes = out.bitmap_bytes * (out.mean_age_sec / rho);
  return out;
}

void Run(bool smoke) {
  uint64_t scale = bench::ScaleDivisor(smoke ? 256 : 16);
  uint64_t n = 1'000'000 / scale;
  double upd_rate = 50.0 * 0.10 / scale;  // ArrRate 50 jobs/s, Upd% = 10
  bench::Header(
      "Figure 8: Compressed Update Summaries",
      "N = " + std::to_string(n) + ", update rate " +
          std::to_string(upd_rate) +
          "/s; per-bitmap size falls and signature age grows with rho'; "
          "their product (total summary) has an interior minimum");
  for (double rho : {0.5, 1.0}) {
    std::printf("\nrho = %.1f s\n", rho);
    std::printf("%12s %14s %14s %14s\n", "rho'/rho", "bitmap (KB)",
                "sig age (s)", "total (KB)");
    for (double m : {128.0, 256.0, 384.0, 512.0, 640.0, 768.0, 896.0,
                     1024.0}) {
      Point pt = Simulate(n, rho, m, upd_rate);
      std::printf("%12.0f %14.3f %14.1f %14.1f\n", m, pt.bitmap_bytes / 1024,
                  pt.mean_age_sec, pt.total_bytes / 1024);
    }
  }
}

}  // namespace
}  // namespace authdb

int main(int argc, char** argv) {
  authdb::bench::BenchRun run(argc, argv, "fig8_summaries");
  authdb::Run(run.smoke());
  return 0;
}
