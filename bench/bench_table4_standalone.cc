// Table 4: standalone (one-at-a-time) query/update performance of the EMB-
// baseline versus BAS for point (sf = 1e-6) and range (sf = 1e-3) operations.
#include <cstdint>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "core/data_aggregator.h"
#include "core/query_server.h"
#include "core/verifier.h"
#include "index/emb_tree.h"
#include "sim/calibration.h"
#include "workload/generator.h"

namespace authdb {
namespace {

constexpr uint32_t kRecLen = 512;

struct Row {
  double query_ms, update_ms, vo_bytes, verify_ms;
};

void Print(const char* label, uint64_t q, const Row& emb, const Row& bas) {
  std::printf("\n%s (%llu records per query)\n", label,
              static_cast<unsigned long long>(q));
  std::printf("  %-22s %12s %12s\n", "", "EMB-", "BAS");
  std::printf("  %-22s %12.3f %12.3f\n", "Query (msec)", emb.query_ms,
              bas.query_ms);
  std::printf("  %-22s %12.3f %12.3f\n", "Update (msec)", emb.update_ms,
              bas.update_ms);
  std::printf("  %-22s %12.0f %12.0f\n", "VO size (bytes)", emb.vo_bytes,
              bas.vo_bytes);
  std::printf("  %-22s %12.3f %12.3f\n", "Verification (msec)", emb.verify_ms,
              bas.verify_ms);
}

void Run(bool smoke) {
  uint64_t scale = bench::ScaleDivisor(smoke ? 1024 : 16);
  uint64_t n = 1'000'000 / scale;
  bench::Header("Table 4: Performance of Standalone Queries & Updates",
                "N = " + std::to_string(n) + " records (paper: 1M; scale " +
                    std::to_string(scale) + "), RecLen 512 B");
  auto ctx = BasContext::Default();
  SystemClock clock;
  Rng rng(4);
  SizeModel sm;

  WorkloadGenerator::Config wcfg;
  wcfg.n_records = n;
  wcfg.record_len = kRecLen;
  WorkloadGenerator workload(wcfg);
  auto records = workload.MakeRecords();

  // --- BAS side: DA + QS.
  DataAggregator::Options da_opt;
  da_opt.record_len = kRecLen;
  da_opt.piggyback_renewal = false;
  DataAggregator da(ctx, &clock, &rng, da_opt);
  QueryServer::Options qs_opt;
  qs_opt.record_len = kRecLen;
  QueryServer qs(ctx, qs_opt);
  {
    auto stream = da.BulkLoad(records);
    AUTHDB_CHECK(stream.ok());
    for (const auto& msg : stream.value()) {
      Status s = qs.ApplyUpdate(msg);
      AUTHDB_CHECK(s.ok());
    }
  }
  // --- EMB side.
  RsaPrivateKey rsa = RsaPrivateKey::Generate(1024, &rng);
  DiskManager emb_data(""), emb_index("");
  BufferPool emb_data_pool(&emb_data, 4096), emb_index_pool(&emb_index, 4096);
  EmbTree emb(&emb_data_pool, &emb_index_pool, &rsa, kRecLen);
  AUTHDB_CHECK(emb.BulkLoad(records).ok());

  CryptoCosts costs = MeasureCryptoCosts(ctx, /*quick=*/true);
  VarintGapCodec codec;
  ClientVerifier client(&da.public_key(), &codec, BasContext::HashMode::kFast);

  const int reps = smoke ? 3 : 10;
  for (uint64_t q : {uint64_t{1}, uint64_t{1000} / (scale >= 1000 ? 16 : 1)}) {
    Row emb_row{}, bas_row{};
    // Queries + verification.
    for (int i = 0; i < reps; ++i) {
      auto [lo, hi] = workload.NextRangeWithCardinality(q);
      Stopwatch sw;
      auto bans = qs.Select(lo, hi);
      bas_row.query_ms += sw.ElapsedMillis();
      AUTHDB_CHECK(bans.ok());
      bas_row.vo_bytes += bans.value().vo_size(sm);
      sw.Reset();
      Status vs = client.VerifySelectionStatic(lo, hi, bans.value());
      // Fast-mode verification measured; add the secure-mode hash-to-point
      // work the paper's client would do (documented substitution #2).
      bas_row.verify_ms +=
          sw.ElapsedMillis() + q * costs.hash_to_point * 1e3;
      AUTHDB_CHECK(vs.ok());

      sw.Reset();
      auto eans = emb.RangeQuery(lo, hi);
      emb_row.query_ms += sw.ElapsedMillis();
      AUTHDB_CHECK(eans.ok());
      emb_row.vo_bytes += EmbTree::VoSizeBytes(eans.value().vo);
      sw.Reset();
      Status es = EmbTree::VerifyRange(rsa.public_key(), lo, hi, eans.value());
      emb_row.verify_ms += sw.ElapsedMillis();
      AUTHDB_CHECK(es.ok());
    }
    // Updates (q records modified per transaction, as in the paper).
    for (int i = 0; i < reps; ++i) {
      auto [lo, hi] = workload.NextRangeWithCardinality(q);
      Stopwatch sw;
      for (int64_t k = lo; k <= hi; ++k) {
        auto msg = da.ModifyRecord(k, workload.NextUpdateValues(k));
        AUTHDB_CHECK(msg.ok());
        Status s = qs.ApplyUpdate(msg.value());
        AUTHDB_CHECK(s.ok());
      }
      bas_row.update_ms += sw.ElapsedMillis();
      sw.Reset();
      for (int64_t k = lo; k <= hi; ++k) {
        Record r;
        r.attrs = workload.NextUpdateValues(k);
        r.ts = clock.NowMicros();
        Status s = emb.UpdateRecord(r);
        AUTHDB_CHECK(s.ok());
      }
      emb_row.update_ms += sw.ElapsedMillis();
    }
    for (Row* r : {&emb_row, &bas_row}) {
      r->query_ms /= reps;
      r->update_ms /= reps;
      r->vo_bytes /= reps;
      r->verify_ms /= reps;
    }
    Print(q == 1 ? "sf = 1e-6 (point)" : "sf = 1e-3 (range)", q, emb_row,
          bas_row);
  }
  std::printf(
      "\nShape checks vs paper Table 4: BAS VO is constant 28 B vs EMB's "
      "growing digest proof; BAS queries/updates at or below EMB's.\n");
}

}  // namespace
}  // namespace authdb

int main(int argc, char** argv) {
  authdb::bench::BenchRun run(argc, argv, "table4_standalone");
  authdb::Run(run.smoke());
  return 0;
}
