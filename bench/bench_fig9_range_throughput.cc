// Figure 9: overall response time and breakdown for range operations
// (sf = 1e-3, 1000 records) — EMB- saturates near 10 jobs/s; BAS sustains
// beyond 45 jobs/s on the same workload.
#include "bench_util.h"
#include "throughput_common.h"

int main(int argc, char** argv) {
  authdb::bench::BenchRun run(argc, argv, "fig9_range_throughput");
  authdb::bench::Header(
      "Figure 9: EMB- versus BAS, range operations (sf = 1e-3)",
      "N = 1M, Upd% = 10; 1000-record answers make the 14.4 Mbps LAN and "
      "verification visible in the breakdown");
  authdb::bench::RunThroughputFigure(
      "Response time vs arrival rate", /*cardinality=*/1000,
      {5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60}, {10, 45},
      run.smoke());
  return 0;
}
