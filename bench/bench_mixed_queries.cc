// Unified verified-query serving under a mixed workload: selections,
// authenticated equi-joins (certified Bloom partitions), and projections
// (per-attribute signatures) all flow through ShardedQueryServer::Execute
// at 1 -> 4 shards while a live DA feed streams updates and rho-period
// summaries (with certified partition refreshes) through the apply queues.
// Reports per-kind throughput and latency plus per-kind VO bytes — the
// serving-layer view of the paper's Figure 11 trade-offs.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/logging.h"
#include "core/data_aggregator.h"
#include "core/verifier.h"
#include "server/sharded_query_server.h"
#include "server/update_stream.h"
#include "sim/multi_client.h"
#include "workload/generator.h"

namespace authdb {
namespace {

void Run(bench::BenchRun* run) {
  const bool smoke = run->smoke();
  // --no-batch is the ablation switch: every plan rides its own envelope
  // (a batch of one), so the same engine runs without cross-plan
  // amortization — shard visits per plan, no shared finalizes.
  const bool batching = !run->Flag("--no-batch");
  const size_t batch_size = batching ? 8 : 1;
  // --scalar-probe is the probe-path ablation: joins fall back to the
  // legacy one-key-at-a-time Bloom probe instead of the batched ProbeMany
  // pre-pass, so the artifact isolates what bulk hashing + block prefetch
  // buys on the join hot path. Answers stay byte-identical either way.
  const bool scalar_probe = run->Flag("--scalar-probe");

  WorkloadGenerator::Config wcfg;
  wcfg.n_records = smoke ? 256 : 2048;  // distinct B values
  wcfg.n_attrs = 4;
  wcfg.join_max_dups = 3;
  wcfg.join_fraction = 0.25;
  wcfg.projection_fraction = 0.25;
  wcfg.seed = 7;
  WorkloadGenerator gen(wcfg);
  const std::vector<Record> rows = gen.MakeCompositeRecords();
  const int64_t key_lo = rows.front().key();
  const int64_t key_hi = JoinCompositeKey(
      static_cast<int64_t>(wcfg.n_records) - 1, kJoinMaxDup);

  const size_t clients = 4;
  const size_t ops_per_client = smoke ? 40 : 300;
  const size_t ingest_period = smoke ? 32 : 128;  // updates per rho-period

  bench::Header(
      "Mixed verified-query serving (select / join / project + live ingest)",
      "S rows = " + std::to_string(rows.size()) + " over " +
          std::to_string(wcfg.n_records) + " distinct B values; " +
          std::to_string(clients) +
          " closed-loop clients at 50% select / 25% join / 25% project; " +
          (batching ? "PlanBatch x" + std::to_string(batch_size)
                    : "batching OFF (--no-batch)") +
          (scalar_probe ? "; scalar bloom probes (--scalar-probe)" : ""));

  SystemClock clock;
  auto ctx = BasContext::Default();

  std::printf("\n%8s %10s %10s %10s %10s %12s %12s %12s %12s\n", "shards",
              "ops/s", "sel/s", "join/s", "proj/s", "cap ops/s",
              "sel p99 us", "join p99 us", "proj p99 us");
  double read_cap_1 = 0, read_cap_4 = 0;
  double join_cap_1 = 0, join_cap_4 = 0;
  double mixed_cap_1 = 0, mixed_cap_4 = 0;
  MultiClientReport last_report;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    // Fresh DA per configuration so every shard count serves an identical
    // certification history.
    Rng rng(13);
    DataAggregator::Options da_opt;
    da_opt.record_len = 128;
    da_opt.piggyback_renewal = false;
    da_opt.sign_attributes = true;  // projections are served, not stubbed
    DataAggregator da(ctx, &clock, &rng, da_opt);
    auto bulk = da.BulkLoad(rows);
    AUTHDB_CHECK(bulk.ok());
    da.EnableJoinPartitions(/*values_per_partition=*/8,
                            /*bits_per_value=*/8.0);

    ServerConfig cfg;
    cfg.node.record_len = 128;
    cfg.serving.worker_threads = shards;
    cfg.serving.scalar_bloom_probes = scalar_probe;
    ShardedQueryServer server(ctx, ShardRouter::Uniform(shards, 0, key_hi),
                              cfg);
    for (const auto& msg : bulk.value()) {
      Status s = server.ApplyUpdate(msg);
      AUTHDB_CHECK(s.ok());
    }
    server.SetJoinPartitions(da.join_partitions());
    DataAggregator::PeriodOutput p0 = da.PublishSummary();
    server.AddSummary(p0.summary);

    // Live ingest racing the mixed load: quantity modifications plus the
    // rho-period summary + certified Bloom partition refresh.
    UpdateStream stream(&server, cfg);
    std::atomic<bool> stop{false};
    std::thread producer([&] {
      Rng prng(29);
      size_t since_summary = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        size_t pick = prng.Uniform(rows.size());
        int64_t key = rows[pick].key();
        auto msg = da.ModifyRecord(
            key, {key, JoinBValue(key),
                  static_cast<int64_t>(prng.Uniform(10'000)), 0});
        AUTHDB_CHECK(msg.ok());
        stream.PushUpdate(std::move(msg.value()));
        if (++since_summary >= ingest_period) {
          since_summary = 0;
          DataAggregator::PeriodOutput out = da.PublishSummary();
          for (const SignedRecordUpdate& m : out.recertifications)
            stream.PushUpdate(m);
          stream.PushSummary(std::move(out.summary),
                             std::move(out.partition_refresh));
        }
      }
    });

    MultiClientOptions mopts;
    mopts.clients = clients;
    mopts.ops_per_client = ops_per_client;
    mopts.key_lo = key_lo;
    mopts.key_hi = key_hi;
    mopts.query_span = JoinCompositeKey(8, 0);  // ~8 B groups per range
    mopts.join_fraction = wcfg.join_fraction;
    mopts.projection_fraction = wcfg.projection_fraction;
    mopts.join_probe_count = wcfg.join_probes;
    mopts.join_b_lo = 0;
    mopts.join_b_hi = 2 * static_cast<int64_t>(wcfg.n_records) - 1;
    mopts.projection_attrs = {1, 2};
    mopts.batch_size = batch_size;
    mopts.seed = 42;
    MultiClientReport report = RunMultiClientLoad(&server, {}, mopts);
    stop.store(true);
    producer.join();
    stream.Flush();
    AUTHDB_CHECK(report.failures == 0);
    AUTHDB_CHECK(stream.Metrics().ingest.apply_failures == 0);
    last_report = report;

    double sel_qps = report.KindOpsPerSecond(report.queries);
    double join_qps = report.KindOpsPerSecond(report.joins);
    double proj_qps = report.KindOpsPerSecond(report.projections);

    // Shard-scaling capacity from per-shard BUSY time, not wall clock:
    // on a single-core runner all shard workers timeslice one core, so
    // wall-clock qps cannot show parallel speedup. What sharding divides
    // is each shard's busy seconds — capacity_K = plans / max_s(busy_s)
    // is the throughput K truly-parallel cores would sustain, and is the
    // machine-independent quantity the 4v1 ratios gate.
    uint64_t busy_max = 0, read_busy_max = 0, join_busy_max = 0;
    for (const auto& kb : report.server.exec.shard_busy) {
      busy_max = std::max(busy_max, kb.visit_us);
      read_busy_max = std::max(read_busy_max, kb.select_us + kb.project_us);
      join_busy_max = std::max(join_busy_max, kb.join_us);
    }
    size_t reads = report.queries + report.projections;
    size_t plans = reads + report.joins;
    double mixed_cap =
        busy_max > 0 ? static_cast<double>(plans) / (busy_max * 1e-6) : 0;
    double read_cap = read_busy_max > 0
                          ? static_cast<double>(reads) / (read_busy_max * 1e-6)
                          : 0;
    double join_cap =
        join_busy_max > 0
            ? static_cast<double>(report.joins) / (join_busy_max * 1e-6)
            : 0;
    if (shards == 1) {
      read_cap_1 = read_cap;
      join_cap_1 = join_cap;
      mixed_cap_1 = mixed_cap;
    }
    if (shards == 4) {
      read_cap_4 = read_cap;
      join_cap_4 = join_cap;
      mixed_cap_4 = mixed_cap;
    }

    std::printf(
        "%8zu %10.0f %10.0f %10.0f %10.0f %12.0f %12llu %12llu %12llu\n",
        shards, report.ops_per_second, sel_qps, join_qps, proj_qps, mixed_cap,
        static_cast<unsigned long long>(
            report.query_latency.PercentileMicros(0.99)),
        static_cast<unsigned long long>(
            report.join_latency.PercentileMicros(0.99)),
        static_cast<unsigned long long>(
            report.projection_latency.PercentileMicros(0.99)));

    std::string suffix = "_shards_" + std::to_string(shards);
    run->Metric("mixed_ops_per_s" + suffix, report.ops_per_second);
    run->Metric("select_qps" + suffix, sel_qps);
    run->Metric("join_qps" + suffix, join_qps);
    run->Metric("projection_qps" + suffix, proj_qps);
    run->Metric("mixed_capacity_per_s" + suffix, mixed_cap);
    run->Metric("read_capacity_per_s" + suffix, read_cap);
    run->Metric("join_capacity_per_s" + suffix, join_cap);
    run->Metric("shard_busy_max_us" + suffix,
                static_cast<double>(busy_max));
    run->Metric("shard_visits" + suffix,
                static_cast<double>(report.server.exec.shard_visits));
    run->Metric("batch_finalizes" + suffix,
                static_cast<double>(report.server.exec.batch_finalizes));
    run->Metric("select_p99_us" + suffix,
                static_cast<double>(
                    report.query_latency.PercentileMicros(0.99)));
    run->Metric("join_p99_us" + suffix,
                static_cast<double>(
                    report.join_latency.PercentileMicros(0.99)));
    run->Metric("projection_p99_us" + suffix,
                static_cast<double>(
                    report.projection_latency.PercentileMicros(0.99)));

    // Quiesced sanity: one answer of each kind must pass the unmodified
    // client-side verifier under the final epoch — the bench measures a
    // *verifiable* serving path, not just a fast one. Verified through
    // VerifyAnswerBatch so the sanity pass exercises the same shared-
    // inversion client path the batch tests pin against the sequential
    // verifier.
    VarintGapCodec codec;
    ClientVerifier verifier(&da.public_key(), &codec, da.hash_mode());
    uint64_t now = clock.NowMicros();
    uint64_t epoch = server.freshness_tracker().current_epoch();
    Query qs = Query::Select(key_lo, JoinCompositeKey(8, kJoinMaxDup));
    Query qj = Query::Join({1, 2, static_cast<int64_t>(wcfg.n_records) + 7});
    Query qp =
        Query::Project(key_lo, JoinCompositeKey(8, kJoinMaxDup), {1, 2});
    PlanBatch sanity = PlanBatch::Of({qs, qj, qp});
    std::vector<Result<QueryAnswer>> sanity_answers =
        server.ExecuteBatch(sanity);
    ClientVerifier::BatchVerifyStats vstats;
    std::vector<Status> verdicts = verifier.VerifyAnswerBatch(
        sanity, sanity_answers, now, epoch,
        ClientVerifier::BatchVerifyOptions(), &vstats);
    for (const Status& st : verdicts) AUTHDB_CHECK(st.ok());
    AUTHDB_CHECK(vstats.shared_inversions == 1);
  }

  // The headline ratios: busy-time capacity scaling 1 -> 4 shards (see the
  // capacity comment above) — machine-independent, gated in CI with a hard
  // scaling floor. Uniform sharding over this workload should land near
  // the shard count minus imbalance; the contract requires >= 2.0 mixed.
  double read_ratio = read_cap_1 > 0 ? read_cap_4 / read_cap_1 : 0;
  double join_ratio = join_cap_1 > 0 ? join_cap_4 / join_cap_1 : 0;
  double mixed_ratio = mixed_cap_1 > 0 ? mixed_cap_4 / mixed_cap_1 : 0;
  std::printf("\nCapacity scaling 4v1 (busy-time): read %.2fx, join %.2fx, "
              "mixed %.2fx\n", read_ratio, join_ratio, mixed_ratio);
  run->Metric("read_qps_ratio_4v1", read_ratio);
  run->Metric("join_qps_ratio_4v1", join_ratio);
  run->Metric("mixed_ops_ratio_4v1", mixed_ratio);
  run->Metric("batching_enabled", batching ? 1.0 : 0.0);
  run->Metric("scalar_bloom_probes", scalar_probe ? 1.0 : 0.0);

  // Per-kind VO accounting from the last (4-shard) run: the serving-layer
  // Figure 11 view. Not throughput metrics — reported, never gated.
  const VoAccounting& vo = last_report.vo;
  std::printf("\nVO bytes per answer (paper constants): select %.0f, "
              "join %.0f (bloom %.0f + boundary %.0f), project %.0f\n",
              vo.select_mean(), vo.join_mean(),
              VoAccounting::Mean(vo.join_bloom_bytes, vo.join_answers),
              VoAccounting::Mean(vo.join_boundary_bytes, vo.join_answers),
              vo.project_mean());
  run->Metric("select_vo_bytes_mean", vo.select_mean());
  run->Metric("join_vo_bytes_mean", vo.join_mean());
  run->Metric("join_bloom_vo_bytes_mean",
              VoAccounting::Mean(vo.join_bloom_bytes, vo.join_answers));
  run->Metric("join_boundary_vo_bytes_mean",
              VoAccounting::Mean(vo.join_boundary_bytes, vo.join_answers));
  run->Metric("projection_vo_bytes_mean", vo.project_mean());
}

}  // namespace
}  // namespace authdb

int main(int argc, char** argv) {
  authdb::bench::BenchRun run(argc, argv, "mixed_queries",
                              {"--no-batch", "--scalar-probe"});
  authdb::Run(&run);
  return 0;
}
