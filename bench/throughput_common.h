#ifndef AUTHDB_BENCH_THROUGHPUT_COMMON_H_
#define AUTHDB_BENCH_THROUGHPUT_COMMON_H_

// Shared machinery for the Figure 7 / Figure 9 throughput experiments:
// calibrated per-job demands for the EMB baseline and the BAS scheme at
// N = 1M records, fed through the discrete-event simulator.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <vector>

#include "core/models.h"
#include "sim/calibration.h"
#include "sim/throughput_sim.h"

namespace authdb {
namespace bench {

struct ThroughputSetup {
  uint64_t n = 1'000'000;
  uint32_t rec_len = 512;
  uint64_t query_cardinality = 1;  // sf * N
  double upd_fraction = 0.1;
  CryptoCosts costs;
  SystemConfig sys;
  /// Sequential transfer rate for leaf scans (2009-era disk); index
  /// descents and scattered writes pay full random I/Os.
  double seq_bytes_per_sec = 50e6;

  /// Random descents + sequential leaf scan for q records.
  double ScanIoSeconds(double height, uint64_t q) const {
    return (height + 1) * sys.io_seconds +
           static_cast<double>(q) * rec_len / seq_bytes_per_sec;
  }
};

/// EMB-: root-locked updates, shared-root queries, digest-path hashing,
/// O(log) digest VO, RSA root signature.
inline std::function<JobDemand(bool, Rng*)> EmbDemand(
    const ThroughputSetup& s) {
  return [s](bool is_update, Rng* rng) {
    (void)rng;
    JobDemand d;
    d.is_update = is_update;
    double h = models::EmbHeight(s.n);
    double merkle_depth = 20.0;  // log2(1M) digest recomputations
    uint64_t q = s.query_cardinality;
    if (is_update) {
      // Update transactions touch q records (Table 4's range updates) and
      // hold the root exclusively throughout, including the re-signature.
      d.exclusive_root = true;
      d.da_cpu_seconds = s.costs.rsa_sign;  // root re-signature
      d.update_bytes = s.rec_len + 128 + 20.0 * merkle_depth;
      d.qs_io_seconds = s.ScanIoSeconds(h, q) + (h + 1) * s.sys.io_seconds;
      d.qs_cpu_seconds = merkle_depth * s.costs.sha_512b * q;
    } else {
      d.shared_root = true;
      d.qs_io_seconds = s.ScanIoSeconds(h, q);
      d.qs_cpu_seconds = q * s.costs.sha_512b;
      double vo_bytes = 440 + (q > 1 ? 280 : 0);  // paper's measured VOs
      d.reply_bytes = q * s.rec_len + vo_bytes;
      d.verify_seconds =
          s.costs.rsa_verify + (q + 2 * merkle_depth) * s.costs.sha_512b;
    }
    return d;
  };
}

/// BAS: record-level locking only; aggregation additions at the QS; 2
/// pairings + per-record hash-to-point at the client.
inline std::function<JobDemand(bool, Rng*)> BasDemand(
    const ThroughputSetup& s) {
  return [s](bool is_update, Rng* rng) {
    (void)rng;
    JobDemand d;
    d.is_update = is_update;
    double h = models::AsignHeight(s.n);
    uint64_t q = s.query_cardinality;
    if (is_update) {
      // Same q-record transaction, but only the touched records are
      // locked: no root serialization (Section 3.2).
      d.da_cpu_seconds = s.costs.bas_sign;
      d.update_bytes = s.rec_len + 20 + 16;
      d.qs_io_seconds = s.ScanIoSeconds(h, q) + (h + 1) * s.sys.io_seconds;
      d.qs_cpu_seconds = 0;  // signatures replaced in place
    } else {
      d.qs_io_seconds = s.ScanIoSeconds(h, q);
      d.qs_cpu_seconds = (q > 0 ? q - 1 : 0) * s.costs.point_add;
      d.reply_bytes = q * s.rec_len + 28 + 375;  // VO + periodic summary
      d.verify_seconds = s.costs.bas_verify + q * s.costs.hash_to_point;
    }
    return d;
  };
}

inline void RunThroughputFigure(const char* title, uint64_t cardinality,
                                std::vector<double> rates,
                                std::vector<double> breakdown_rates,
                                bool smoke = false) {
  if (smoke) {
    // Minimal-iteration mode: two rates, one breakdown, few jobs.
    if (rates.size() > 2) rates.resize(2);
    if (breakdown_rates.size() > 1) breakdown_rates.resize(1);
  }
  const double min_jobs = smoke ? 200.0 : 2000.0;
  auto ctx = BasContext::Default();
  ThroughputSetup setup;
  setup.query_cardinality = cardinality;
  setup.costs = MeasureCryptoCosts(ctx, /*quick=*/true);

  ThroughputSimulator sim(setup.sys);
  std::printf("\n%s\n", title);
  std::printf("%8s %12s %12s %12s %12s   (msec)\n", "rate", "EMB-(Q)",
              "EMB-(U)", "BAS(Q)", "BAS(U)");
  for (double rate : rates) {
    Rng r1(7), r2(7);
    size_t jobs = static_cast<size_t>(std::max(min_jobs, rate * 30));
    auto emb = sim.Run(rate, jobs, setup.upd_fraction, EmbDemand(setup), &r1);
    auto bas = sim.Run(rate, jobs, setup.upd_fraction, BasDemand(setup), &r2);
    std::printf("%8.0f %12.1f %12.1f %12.1f %12.1f\n", rate,
                emb.mean_query_response * 1e3, emb.mean_update_response * 1e3,
                bas.mean_query_response * 1e3,
                bas.mean_update_response * 1e3);
  }
  std::printf("\nQuery response breakdown (msec):\n");
  std::printf("%8s %6s %9s %9s %9s %9s %9s\n", "rate", "scheme", "locking",
              "queueing", "process", "transmit", "verify");
  for (double rate : breakdown_rates) {
    Rng r1(7), r2(7);
    size_t jobs = static_cast<size_t>(std::max(min_jobs, rate * 30));
    auto emb = sim.Run(rate, jobs, setup.upd_fraction, EmbDemand(setup), &r1);
    auto bas = sim.Run(rate, jobs, setup.upd_fraction, BasDemand(setup), &r2);
    std::printf("%8.0f %6s %9.1f %9.1f %9.1f %9.1f %9.1f\n", rate, "EMB-",
                emb.query_locking * 1e3, emb.query_queueing * 1e3,
                emb.query_processing * 1e3, emb.query_transmission * 1e3,
                emb.query_verification * 1e3);
    std::printf("%8.0f %6s %9.1f %9.1f %9.1f %9.1f %9.1f\n", rate, "BAS",
                bas.query_locking * 1e3, bas.query_queueing * 1e3,
                bas.query_processing * 1e3, bas.query_transmission * 1e3,
                bas.query_verification * 1e3);
  }
}

}  // namespace bench
}  // namespace authdb

#endif  // AUTHDB_BENCH_THROUGHPUT_COMMON_H_
