// Table 1: height of the ASign index versus the EMB-tree as N grows.
// The paper's analytic model (Section 3.2) is printed next to measured
// heights of the real disk-resident B+-tree at laptop-feasible N.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/models.h"
#include "index/btree.h"

namespace authdb {
namespace {

void Run(bool smoke) {
  bench::Header("Table 1: Height of Index Tree versus N",
                "paper model: ceil(log_f(3/2 * ceil(N/146))), f=341 (ASign) "
                "/ 97 (EMB-)");
  std::printf("%-12s %8s %8s\n", "N", "ASign", "EMB-");
  for (uint64_t n : {10'000ull, 100'000ull, 1'000'000ull, 10'000'000ull,
                     100'000'000ull}) {
    std::printf("%-12" PRIu64 " %8d %8d\n", n, models::AsignHeight(n),
                models::EmbHeight(n));
  }

  std::printf(
      "\nMeasured heights of the real B+-tree (72-byte ASign payload, "
      "8-byte keys => leaf cap 51, internal fanout 340):\n");
  std::printf("%-12s %8s\n", "N", "height");
  std::vector<uint64_t> sizes = smoke
                                    ? std::vector<uint64_t>{1'000, 10'000}
                                    : std::vector<uint64_t>{1'000, 10'000,
                                                            100'000};
  for (uint64_t n : sizes) {
    DiskManager dm("");
    BufferPool pool(&dm, 1024);
    BPlusTree tree(&pool, 72);
    std::vector<uint8_t> payload(72, 0);
    for (uint64_t k = 0; k < n; ++k)
      (void)tree.Insert(static_cast<int64_t>(k), Slice(payload));
    std::printf("%-12" PRIu64 " %8u\n", n, tree.height());
  }
}

}  // namespace
}  // namespace authdb

int main(int argc, char** argv) {
  authdb::bench::BenchRun run(argc, argv, "table1_height");
  authdb::Run(run.smoke());
  return 0;
}
