// Figure 7: overall response time and breakdown for point operations
// (sf = 1e-6) under increasing arrival rates — EMB- saturates early on root
// lock contention; BAS scales past 120 jobs/s.
#include "bench_util.h"
#include "throughput_common.h"

int main(int argc, char** argv) {
  authdb::bench::BenchRun run(argc, argv, "fig7_point_throughput");
  authdb::bench::Header(
      "Figure 7: EMB- versus BAS, point operations (sf = 1e-6)",
      "N = 1M, Upd% = 10, quad-core QS model; service times calibrated "
      "from the in-tree implementations (DESIGN.md substitution #3)");
  authdb::bench::RunThroughputFigure(
      "Response time vs arrival rate", /*cardinality=*/1,
      {10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120}, {50, 120},
      run.smoke());
  return 0;
}
