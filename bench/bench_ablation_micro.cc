// Ablation micro-benchmarks (google-benchmark): design choices called out
// in DESIGN.md — bitmap codec for the update summaries, digest function for
// the chain messages, and SigCache cover composition versus naive
// aggregation.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "common/random.h"
#include "core/sigcache.h"
#include "crypto/bitmap.h"
#include "crypto/sha.h"

namespace authdb {
namespace {

Bitmap MakeSparseBitmap(size_t bits, size_t ones) {
  Rng rng(5);
  Bitmap bm(bits);
  for (size_t i = 0; i < ones; ++i) bm.Set(rng.Uniform(bits));
  return bm;
}

void BM_BitmapEncodeVarintGap(benchmark::State& state) {
  Bitmap bm = MakeSparseBitmap(1 << 20, state.range(0));
  VarintGapCodec codec;
  size_t bytes = 0;
  for (auto _ : state) {
    auto enc = codec.Encode(bm);
    bytes = enc.size();
    benchmark::DoNotOptimize(enc);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.counters["bytes_per_one"] =
      static_cast<double>(bytes) / state.range(0);
}
BENCHMARK(BM_BitmapEncodeVarintGap)->Arg(100)->Arg(1000)->Arg(10000);

void BM_BitmapEncodeWah(benchmark::State& state) {
  Bitmap bm = MakeSparseBitmap(1 << 20, state.range(0));
  WahCodec codec;
  size_t bytes = 0;
  for (auto _ : state) {
    auto enc = codec.Encode(bm);
    bytes = enc.size();
    benchmark::DoNotOptimize(enc);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.counters["bytes_per_one"] =
      static_cast<double>(bytes) / state.range(0);
}
BENCHMARK(BM_BitmapEncodeWah)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Sha1Digest(benchmark::State& state) {
  std::string msg(state.range(0), 'r');
  for (auto _ : state) {
    Digest160 d = Sha1::Hash(Slice(msg));
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_Sha1Digest)->Arg(256)->Arg(512)->Arg(1024);

void BM_Sha256Digest(benchmark::State& state) {
  std::string msg(state.range(0), 'r');
  for (auto _ : state) {
    Digest256 d = Sha256::Hash(Slice(msg));
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_Sha256Digest)->Arg(256)->Arg(512)->Arg(1024);

// SigCache cover decomposition: expected additions per query with and
// without the planner's cache, harmonic workload (pure planning math; the
// EC cost ratio is what Figure 6 reports).
void BM_SigCachePlan(benchmark::State& state) {
  uint64_t n = uint64_t{1} << state.range(0);
  auto dist = CardinalityDist::Harmonic(n);
  for (auto _ : state) {
    auto plan = SigCachePlanner::Plan(n, dist, 8);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_SigCachePlan)->Arg(14)->Arg(17)->Arg(20);

}  // namespace
}  // namespace authdb

BENCHMARK_MAIN();
